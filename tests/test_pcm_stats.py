"""Tests for wear statistics and the DCW model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pcm.array import PCMArray
from repro.pcm.dcw import DataComparisonWriteModel
from repro.pcm.stats import WearStatistics, gini_coefficient


class TestGini:
    def test_equal_sample_is_zero(self):
        assert gini_coefficient(np.ones(10)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_sample_near_one(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini_coefficient(values) > 0.95

    def test_zero_total(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([1.0, -1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([]))

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=2, max_size=50)
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_property(self, values):
        gini = gini_coefficient(np.array(values))
        assert -1e-9 <= gini < 1.0

    def test_scale_invariant(self):
        values = np.array([1.0, 2.0, 5.0, 9.0])
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient(values * 37.0)
        )


class TestWearStatistics:
    def test_from_array(self):
        array = PCMArray.uniform(8, 100)
        array.write_many(0, 50)
        stats = WearStatistics.from_array(array)
        assert stats.total_writes == 50
        assert stats.max_wear_fraction == pytest.approx(0.5)
        assert stats.utilization == pytest.approx(50 / 800)
        assert stats.wear_gini > 0.8

    def test_as_dict_keys(self):
        array = PCMArray.uniform(4, 100)
        stats = WearStatistics.from_array(array)
        data = stats.as_dict()
        assert set(data) == {
            "total_writes",
            "utilization",
            "wear_gini",
            "max_wear_fraction",
            "mean_wear_fraction",
            "p99_wear_fraction",
        }


class TestDCW:
    def test_expected_bits(self):
        model = DataComparisonWriteModel(flip_probability=0.25)
        assert model.expected_bits_written(1000) == pytest.approx(250.0)

    def test_energy_scale(self):
        assert DataComparisonWriteModel(flip_probability=0.1).energy_scale() == 0.1

    def test_latency_scale_monotone(self):
        low = DataComparisonWriteModel(flip_probability=0.01).latency_scale()
        high = DataComparisonWriteModel(flip_probability=0.5).latency_scale()
        assert low < high <= 1.0

    def test_latency_floor_without_sets(self):
        model = DataComparisonWriteModel(flip_probability=0.0)
        assert model.latency_scale() == pytest.approx(0.125)

    def test_sample_bits(self, rng):
        model = DataComparisonWriteModel(flip_probability=0.25)
        samples = model.sample_bits_written(32768, rng, size=200)
        assert samples.shape == (200,)
        assert abs(samples.mean() - 8192) < 200

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            DataComparisonWriteModel(flip_probability=1.5)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            DataComparisonWriteModel().expected_bits_written(-1)
