"""Tests for deterministic seed derivation."""

from repro.rng.streams import SeedSequenceFactory, derive_seed, make_generator


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(2017, "a", "b") == derive_seed(2017, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(2017, "a") != derive_seed(2017, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_integer_labels(self):
        assert derive_seed(1, 5) == derive_seed(1, 5)
        assert derive_seed(1, 5) != derive_seed(1, 6)

    def test_positive_63_bit(self):
        for label in range(100):
            seed = derive_seed(7, label)
            assert 0 <= seed < 1 << 63

    def test_no_label_path_collision(self):
        # ("ab",) vs ("a", "b") must differ thanks to the separator.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestGenerators:
    def test_generator_reproducible(self):
        a = make_generator(11, "x")
        b = make_generator(11, "x")
        assert float(a.random()) == float(b.random())

    def test_factory_matches_free_function(self):
        factory = SeedSequenceFactory(11)
        assert factory.seed("x") == derive_seed(11, "x")

    def test_factory_generators_independent(self):
        factory = SeedSequenceFactory(3)
        a = factory.generator("one")
        b = factory.generator("two")
        assert float(a.random()) != float(b.random())
