"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.io import load_trace, save_trace
from repro.traces.trace import Trace


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = Trace.writes_only([1, 5, 5, 2], name="demo", write_bandwidth_mbps=42.0)
        path = str(tmp_path / "demo.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "demo"
        assert loaded.write_bandwidth_mbps == 42.0
        assert (loaded.pages == trace.pages).all()
        assert (loaded.ops == trace.ops).all()

    def test_roundtrip_without_bandwidth(self, tmp_path):
        trace = Trace.writes_only([0])
        path = str(tmp_path / "nb.npz")
        save_trace(trace, path)
        assert load_trace(path).write_bandwidth_bytes is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(str(tmp_path / "nope.npz"))

    def test_malformed_archive(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, junk=np.array([1]))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "t.npz")
        save_trace(Trace.writes_only([3]), path)
        assert load_trace(path).n_writes == 1

    def test_version_checked(self, tmp_path):
        path = str(tmp_path / "v.npz")
        metadata = np.frombuffer(b'{"version": 99}', dtype=np.uint8)
        np.savez(
            path,
            ops=np.array([1], dtype=np.uint8),
            pages=np.array([0], dtype=np.int64),
            metadata=metadata,
        )
        with pytest.raises(TraceError):
            load_trace(path)
