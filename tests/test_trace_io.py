"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.io import load_trace, save_trace
from repro.traces.trace import Trace


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = Trace.writes_only([1, 5, 5, 2], name="demo", write_bandwidth_mbps=42.0)
        path = str(tmp_path / "demo.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "demo"
        assert loaded.write_bandwidth_mbps == 42.0
        assert (loaded.pages == trace.pages).all()
        assert (loaded.ops == trace.ops).all()

    def test_roundtrip_without_bandwidth(self, tmp_path):
        trace = Trace.writes_only([0])
        path = str(tmp_path / "nb.npz")
        save_trace(trace, path)
        assert load_trace(path).write_bandwidth_bytes is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(str(tmp_path / "nope.npz"))

    def test_malformed_archive(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, junk=np.array([1]))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "t.npz")
        save_trace(Trace.writes_only([3]), path)
        assert load_trace(path).n_writes == 1

    def test_version_checked(self, tmp_path):
        path = str(tmp_path / "v.npz")
        metadata = np.frombuffer(b'{"version": 99}', dtype=np.uint8)
        np.savez(
            path,
            ops=np.array([1], dtype=np.uint8),
            pages=np.array([0], dtype=np.int64),
            metadata=metadata,
        )
        with pytest.raises(TraceError):
            load_trace(path)


class TestCorruptTraceFiles:
    """Every corruption mode surfaces as TraceError naming the file."""

    def _save(self, tmp_path, name="t.npz"):
        path = str(tmp_path / name)
        save_trace(Trace.writes_only([1, 2, 3], name="demo"), path)
        return path

    def test_not_an_archive(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        with open(path, "wb") as handle:
            handle.write(b"this is not a zip file")
        with pytest.raises(TraceError, match="junk.npz"):
            load_trace(path)

    def test_truncated_archive(self, tmp_path):
        path = self._save(tmp_path)
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        with pytest.raises(TraceError, match="t.npz"):
            load_trace(path)

    def test_missing_member_names_record(self, tmp_path):
        path = str(tmp_path / "m.npz")
        np.savez(path, ops=np.array([1], dtype=np.uint8))
        with pytest.raises(TraceError, match="pages"):
            load_trace(path)

    def test_undecodable_metadata(self, tmp_path):
        path = str(tmp_path / "u.npz")
        np.savez(
            path,
            ops=np.array([1], dtype=np.uint8),
            pages=np.array([0], dtype=np.int64),
            metadata=np.frombuffer(b"\xff\xfenot json", dtype=np.uint8),
        )
        with pytest.raises(TraceError, match="metadata"):
            load_trace(path)

    def test_non_object_metadata(self, tmp_path):
        path = str(tmp_path / "l.npz")
        np.savez(
            path,
            ops=np.array([1], dtype=np.uint8),
            pages=np.array([0], dtype=np.int64),
            metadata=np.frombuffer(b"[1, 2]", dtype=np.uint8),
        )
        with pytest.raises(TraceError, match="JSON object"):
            load_trace(path)

    def test_invalid_records_name_file(self, tmp_path):
        path = str(tmp_path / "r.npz")
        metadata = np.frombuffer(b'{"version": 1}', dtype=np.uint8)
        np.savez(
            path,
            ops=np.array([7], dtype=np.uint8),  # invalid op code
            pages=np.array([0], dtype=np.int64),
            metadata=metadata,
        )
        with pytest.raises(TraceError, match="r.npz"):
            load_trace(path)

    def test_mismatched_record_lengths(self, tmp_path):
        path = str(tmp_path / "s.npz")
        metadata = np.frombuffer(b'{"version": 1}', dtype=np.uint8)
        np.savez(
            path,
            ops=np.array([1, 1], dtype=np.uint8),
            pages=np.array([0], dtype=np.int64),
            metadata=metadata,
        )
        with pytest.raises(TraceError, match="s.npz"):
            load_trace(path)
