"""Additional hardware-cost coverage: scaling behaviour and consistency."""

import pytest

from repro.config import PCMConfig, TWLConfig
from repro.hwcost.gates import (
    comparator_gates,
    feistel_rng_gates,
    sequential_divider_gates,
)
from repro.hwcost.storage import scheme_storage_bits, twl_storage_bits_per_page
from repro.hwcost.synthesis import twl_design_overhead


class TestScaling:
    def test_rng_cost_grows_with_width(self):
        assert feistel_rng_gates(bits=16) > feistel_rng_gates(bits=8)

    def test_divider_grows_with_operand_width(self):
        assert sequential_divider_gates(32) > sequential_divider_gates(16)

    def test_address_width_drives_storage(self):
        small = PCMConfig(capacity_bytes=(1 << 20) * 4096)  # 2^20 pages
        large = PCMConfig(capacity_bytes=(1 << 23) * 4096)  # 2^23 pages
        delta = twl_storage_bits_per_page(large) - twl_storage_bits_per_page(small)
        # RT and SWPT each gain 3 bits per entry.
        assert delta == 6

    def test_wct_width_in_storage(self):
        wide = TWLConfig(write_counter_bits=10, toss_up_interval=32)
        assert (
            twl_storage_bits_per_page(twl=wide)
            == twl_storage_bits_per_page(twl=TWLConfig()) + 3
        )


class TestCrossSchemeComparison:
    def test_twl_total_storage_close_to_wrl(self):
        """TWL's per-page state is within 2x of WRL's (the paper argues
        the overhead is comparable to prior PV-aware schemes)."""
        twl_bits = sum(scheme_storage_bits("twl").values())
        wrl_bits = sum(scheme_storage_bits("wrl").values())
        assert twl_bits < 2 * wrl_bits
        assert wrl_bits < 2 * twl_bits

    def test_sr_is_registers_only(self):
        sr_bits = sum(scheme_storage_bits("sr").values())
        # No per-page tables: total device storage is tens of bits.
        assert sr_bits < 256

    def test_startgap_cheapest(self):
        startgap = sum(scheme_storage_bits("startgap").values())
        others = [
            sum(scheme_storage_bits(name).values())
            for name in ("sr", "wrl", "bwl", "twl")
        ]
        assert all(startgap <= other for other in others)


class TestReportConsistency:
    def test_total_is_sum(self):
        report = twl_design_overhead()
        assert report.total_gates == report.rng_gates + report.datapath_gates

    def test_datapath_includes_all_comparators(self):
        report = twl_design_overhead()
        floor = (
            sequential_divider_gates(27)
            + comparator_gates(8)
            + comparator_gates(7)
        )
        assert report.datapath_gates >= floor

    def test_small_array_smaller_overhead(self):
        small = PCMConfig(capacity_bytes=1024 * 4096)
        report = twl_design_overhead(pcm=small)
        assert report.storage_bits_per_page < 80
