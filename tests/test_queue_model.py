"""Tests for the discrete-event write-queue timing model."""

import math

import pytest

from repro.config import TimingConfig
from repro.errors import ConfigError
from repro.sim.metrics import SchemeOverheads
from repro.timing.queue_model import (
    QueueModelConfig,
    queue_normalized_execution_time,
    simulate_write_queue,
)
from repro.traces.parsec import get_profile


def _overheads(scheme, swap_write_ratio, swap_event_ratio):
    return SchemeOverheads(
        scheme=scheme,
        workload="test",
        demand_writes=1000,
        swap_write_ratio=swap_write_ratio,
        swap_event_ratio=swap_event_ratio,
        extra_stats={},
    )


class TestQueueSimulation:
    def test_mm1_wait_matches_theory(self):
        """Sanity: with deterministic service, the M/D/1 mean wait is
        rho * S / (2 * (1 - rho)); the simulated queue must land close."""
        timing = TimingConfig()
        rho = 0.6
        result = simulate_write_queue(
            "nowl", 0.0, 0.0, rho, timing=timing,
            config=QueueModelConfig(n_requests=200_000),
        )
        service = timing.write_cycles
        theoretical_wait = rho * service / (2 * (1 - rho))
        assert result.mean_wait_cycles == pytest.approx(theoretical_wait, rel=0.1)

    def test_swap_events_stretch_sojourn(self):
        quiet = simulate_write_queue("sr", 0.0, 0.0, 0.5)
        swappy = simulate_write_queue("sr", 0.05, 2.0, 0.5)
        assert swappy.mean_sojourn_cycles > quiet.mean_sojourn_cycles

    def test_utilization_amplifies_overhead(self):
        low = simulate_write_queue("sr", 0.02, 2.0, 0.3)
        high = simulate_write_queue("sr", 0.02, 2.0, 0.85)
        low_base = simulate_write_queue("nowl", 0.0, 0.0, 0.3)
        high_base = simulate_write_queue("nowl", 0.0, 0.0, 0.85)
        low_ratio = low.mean_sojourn_cycles / low_base.mean_sojourn_cycles
        high_ratio = high.mean_sojourn_cycles / high_base.mean_sojourn_cycles
        assert high_ratio > low_ratio

    def test_deterministic(self):
        a = simulate_write_queue("twl", 0.01, 2.0, 0.5)
        b = simulate_write_queue("twl", 0.01, 2.0, 0.5)
        assert a.mean_sojourn_cycles == b.mean_sojourn_cycles

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_write_queue("nowl", -0.1, 0.0, 0.5)
        with pytest.raises(ConfigError):
            simulate_write_queue("nowl", 0.0, -1.0, 0.5)
        with pytest.raises(ConfigError):
            simulate_write_queue("nowl", 0.0, 0.0, 1.5)
        with pytest.raises(ConfigError):
            QueueModelConfig(base_utilization=0.9, peak_utilization=0.5)
        with pytest.raises(ConfigError):
            QueueModelConfig(n_requests=10)


class TestNormalizedTime:
    def test_above_one_for_real_schemes(self):
        profile = get_profile("vips")
        value = queue_normalized_execution_time(
            "twl", _overheads("twl", 0.03, 0.015), profile
        )
        assert 1.0 < value < 1.3

    def test_bwl_worst(self):
        profile = get_profile("canneal")
        bwl = queue_normalized_execution_time(
            "bwl", _overheads("bwl", 0.06, 0.01), profile
        )
        twl = queue_normalized_execution_time(
            "twl", _overheads("twl", 0.03, 0.015), profile
        )
        assert bwl > twl

    def test_agrees_with_analytic_model_on_the_outlier(self):
        """Both timing models single out BWL as the slowest scheme.

        The exact SR/TWL ordering is model-dependent (the queue model
        serializes every migration write; the analytic model gives TWL's
        pair-local swaps a write-queue discount), but the Figure-9
        headline — BWL pays the most — must hold in both.
        """
        from repro.timing.perf_model import normalized_execution_time

        profile = get_profile("vips")
        pairs = {}
        for scheme, swaps, events in (
            ("bwl", 0.06, 0.01),
            ("sr", 0.016, 0.008),
            ("twl", 0.03, 0.015),
        ):
            overheads = _overheads(scheme, swaps, events)
            pairs[scheme] = (
                queue_normalized_execution_time(scheme, overheads, profile),
                normalized_execution_time(scheme, overheads, profile),
            )
        for column in (0, 1):
            assert pairs["bwl"][column] == max(p[column] for p in pairs.values())

    def test_saturation_detected(self):
        profile = get_profile("vips")
        overheads = _overheads("bwl", 2.0, 0.5)  # absurd migration load
        with pytest.raises(ConfigError):
            queue_normalized_execution_time("bwl", overheads, profile)

    def test_memory_boundedness_matters(self):
        overheads = _overheads("twl", 0.03, 0.015)
        vips = queue_normalized_execution_time("twl", overheads, get_profile("vips"))
        stream = queue_normalized_execution_time(
            "twl", overheads, get_profile("streamcluster")
        )
        assert vips > stream
