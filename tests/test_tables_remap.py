"""Tests for the remapping table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressError, TableError
from repro.tables.remap import RemappingTable


class TestRemappingTable:
    def test_identity_initially(self):
        table = RemappingTable(8)
        assert table.mapping() == list(range(8))

    def test_swap_logical(self):
        table = RemappingTable(8)
        table.swap_logical(0, 5)
        assert table.lookup(0) == 5
        assert table.lookup(5) == 0
        assert table.inverse(5) == 0

    def test_swap_physical(self):
        table = RemappingTable(8)
        table.swap_physical(2, 3)
        assert table.lookup(2) == 3
        assert table.lookup(3) == 2

    def test_self_swap_noop(self):
        table = RemappingTable(4)
        table.swap_logical(1, 1)
        assert table.mapping() == [0, 1, 2, 3]

    def test_entry_bits(self):
        assert RemappingTable(8 * 1024 * 1024).entry_bits == 23  # the paper's RT width
        assert RemappingTable(1024).entry_bits == 10
        assert RemappingTable(1).entry_bits == 1

    def test_validate_passes(self):
        table = RemappingTable(16)
        table.swap_logical(3, 9)
        table.swap_physical(1, 14)
        table.validate()

    def test_out_of_range(self):
        table = RemappingTable(4)
        with pytest.raises(AddressError):
            table.lookup(4)
        with pytest.raises(AddressError):
            table.swap_logical(0, 7)

    def test_rejects_empty(self):
        with pytest.raises(TableError):
            RemappingTable(0)

    def test_len(self):
        assert len(RemappingTable(12)) == 12

    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_bijection_invariant_property(self, swaps):
        table = RemappingTable(32)
        for a, b in swaps:
            if a % 2:
                table.swap_logical(a, b)
            else:
                table.swap_physical(a, b)
        table.validate()
        assert sorted(table.mapping()) == list(range(32))
