"""Tests for the project-wide index pass and the state & effect rules.

Covers ``repro.devtools.project_index`` (symbol table, cross-module
base-class resolution, per-method effect sets, property/``__slots__``
awareness) and ``repro.devtools.state_rules`` (TWL008 snapshot
completeness, TWL009 batch/scalar effect parity) over planted-defect
fixtures — including the removed-snapshot-field regression the rules
exist to catch.
"""

from __future__ import annotations

import textwrap

from repro.devtools.project_index import build_index
from repro.devtools.state_rules import check_state_rules


def _index(**modules: str):
    """Build an index from ``module_name=source`` keyword fixtures.

    Module names use ``__`` for dots so they stay valid keywords
    (``repro__wearlevel__fake`` -> ``repro.wearlevel.fake``).
    """
    sources = []
    for key, source in modules.items():
        name = key.replace("__", ".")
        sources.append((f"<{name}>", name, textwrap.dedent(source)))
    return build_index(sources)


def _rules(violations) -> set:
    return {v.rule for v in violations}


COMPLETE_COUNTER = """
    class Counter:
        def __init__(self):
            self.total = 0
            self.errors = 0

        def tick(self, failed):
            self.total += 1
            if failed:
                self.errors += 1

        def snapshot_state(self):
            return {"total": self.total, "errors": self.errors}

        def restore_state(self, state):
            self.total = state["total"]
            self.errors = state["errors"]
"""


class TestIndexPass:
    def test_methods_and_effect_sets(self):
        index = _index(counters=COMPLETE_COUNTER)
        info = index.classes["counters.Counter"]
        tick = info.methods["tick"]
        assert set(tick.writes) == {"total", "errors"}
        assert info.methods["snapshot_state"].reads == {"total", "errors"}
        assert set(info.methods["restore_state"].writes) == {"total", "errors"}

    def test_init_attrs_recorded_separately(self):
        index = _index(counters=COMPLETE_COUNTER)
        info = index.classes["counters.Counter"]
        assert set(info.init_attrs) == {"total", "errors"}

    def test_attr_assigned_outside_init_is_an_effect_not_an_init_attr(self):
        index = _index(
            lazy="""
            class Lazy:
                def __init__(self):
                    self.base = 0

                def warm(self):
                    self.cache = [self.base]
            """
        )
        info = index.classes["lazy.Lazy"]
        assert "cache" not in info.init_attrs
        assert "cache" in info.methods["warm"].writes

    def test_alias_mutation_attributed_to_attribute(self):
        index = _index(
            queues="""
            class Spool:
                def __init__(self):
                    self._queue = []

                def push(self, item):
                    queue = self._queue
                    queue.append(item)
            """
        )
        push = index.classes["queues.Spool"].methods["push"]
        assert "_queue" in push.mutations

    def test_cross_module_base_resolution(self):
        index = _index(
            schemes__base="""
            class Scheme:
                def snapshot_state(self):
                    return {}
            """,
            schemes__rotating="""
            from schemes.base import Scheme

            class Rotating(Scheme):
                def write(self, logical):
                    return logical
            """,
        )
        mro = index.mro("schemes.rotating.Rotating")
        assert [info.qualname for info in mro] == [
            "schemes.rotating.Rotating",
            "schemes.base.Scheme",
        ]

    def test_slots_recorded(self):
        index = _index(
            packed="""
            class Packed:
                __slots__ = ("a", "b")
            """
        )
        assert index.classes["packed.Packed"].slots == ("a", "b")

    def test_property_detection(self):
        index = _index(
            gauges="""
            class Gauge:
                def __init__(self):
                    self._level = 0

                @property
                def level(self):
                    return self._level
            """
        )
        info = index.classes["gauges.Gauge"]
        assert info.property_names() == {"level"}
        assert index.mro_properties("gauges.Gauge") == {"level"}

    def test_dataclass_fields_count_as_init_attrs(self):
        index = _index(
            records="""
            from dataclasses import dataclass

            @dataclass
            class Record:
                count: int = 0
            """
        )
        info = index.classes["records.Record"]
        assert info.is_dataclass
        assert "count" in info.init_attrs

    def test_syntax_error_module_is_skipped(self):
        index = _index(ok=COMPLETE_COUNTER, broken="def broken(:\n")
        assert "counters.Counter" not in index.classes  # sanity: key naming
        assert "ok.Counter" in index.classes
        assert "broken" not in index.modules


class TestTWL008SnapshotCompleteness:
    def test_complete_protocol_is_clean(self):
        index = _index(counters=COMPLETE_COUNTER)
        assert check_state_rules(index) == []

    def test_removed_snapshot_field_trips_twl008(self):
        # The regression the rule exists for: delete one field from the
        # snapshot dict and the analyzer must notice.
        index = _index(
            counters=COMPLETE_COUNTER.replace(
                '"total": self.total, "errors": self.errors}',
                '"total": self.total}',
            )
        )
        out = check_state_rules(index)
        assert _rules(out) == {"TWL008"}
        (violation,) = out
        assert "'errors'" in violation.message
        assert "snapshot side" in violation.message

    def test_removed_restore_field_trips_twl008(self):
        index = _index(
            counters=COMPLETE_COUNTER.replace(
                'self.errors = state["errors"]', "pass"
            )
        )
        out = check_state_rules(index)
        assert _rules(out) == {"TWL008"}
        assert "restore side" in out[0].message

    def test_inherited_protocol_sees_subclass_attribute(self):
        index = _index(
            schemes__base="""
            class Scheme:
                def __init__(self):
                    self.moves = 0

                def snapshot_state(self):
                    return {"moves": self.moves}

                def restore_state(self, state):
                    self.moves = state["moves"]
            """,
            schemes__rotating="""
            from schemes.base import Scheme

            class Rotating(Scheme):
                def write(self, logical):
                    self.moves += 1
                    self.cursor = logical
            """,
        )
        out = check_state_rules(index)
        assert _rules(out) == {"TWL008"}
        (violation,) = out
        assert "'cursor'" in violation.message
        assert violation.path == "<schemes.rotating>"

    def test_snapshot_through_property_captures_backing_attr(self):
        index = _index(
            gauges="""
            class Gauge:
                def __init__(self):
                    self._level = 0

                def bump(self):
                    self._level += 1

                @property
                def level(self):
                    return self._level

                def snapshot_state(self):
                    return {"level": self.level}

                def restore_state(self, state):
                    self._level = state["level"]
            """
        )
        assert check_state_rules(index) == []

    def test_snapshot_through_helper_captures_transitively(self):
        index = _index(
            layered="""
            class Layered:
                def __init__(self):
                    self.count = 0

                def tick(self):
                    self.count += 1

                def _base_state(self):
                    return {"count": self.count}

                def snapshot_state(self):
                    return self._base_state()

                def restore_state(self, state):
                    self.count = state["count"]
            """
        )
        assert check_state_rules(index) == []

    def test_stateful_class_without_protocol_flagged_in_audited_package(self):
        index = _index(
            repro__wearlevel__fake="""
            class Tracker:
                def __init__(self):
                    self.hits = 0

                def record(self):
                    self.hits += 1
            """
        )
        out = check_state_rules(index)
        assert _rules(out) == {"TWL008"}
        assert "no snapshot/restore protocol" in out[0].message

    def test_missing_protocol_rule_scoped_to_audited_packages(self):
        index = _index(
            tools__example="""
            class Tracker:
                def __init__(self):
                    self.hits = 0

                def record(self):
                    self.hits += 1
            """
        )
        assert check_state_rules(index) == []

    def test_owned_component_must_travel(self):
        source = """
            class Table:
                def __init__(self, n):
                    self.rows = [0] * n

                def bump(self, i):
                    self.rows[i] += 1

                def snapshot_state(self):
                    return {"rows": list(self.rows)}

                def restore_state(self, state):
                    self.rows = list(state["rows"])

            class Owner:
                def __init__(self, n):
                    self.table = Table(n)
                    self.spins = 0

                def spin(self):
                    self.spins += 1

                def snapshot_state(self):
                    return {"spins": self.spins}

                def restore_state(self, state):
                    self.spins = state["spins"]
        """
        out = check_state_rules(_index(tables=source))
        assert _rules(out) == {"TWL008"}
        assert "owned component 'table'" in out[0].message

        travelling = source.replace(
            '{"spins": self.spins}',
            '{"spins": self.spins, "table": self.table.snapshot_state()}',
        ).replace(
            'self.spins = state["spins"]',
            'self.spins = state["spins"]\n'
            '        self.table.restore_state(state["table"])',
        )
        assert check_state_rules(_index(tables=travelling)) == []


class TestTWL009BatchParity:
    def test_symmetric_paths_are_clean(self):
        index = _index(
            parity="""
            class Scheme:
                def write(self, logical):
                    self.count += 1
                    return 1

                def write_batch(self, addresses):
                    self.count += len(addresses)
                    return []
            """
        )
        assert check_state_rules(index) == []

    def test_batch_only_effect_flagged(self):
        index = _index(
            parity="""
            class Scheme:
                def write(self, logical):
                    self.count += 1
                    return 1

                def write_batch(self, addresses):
                    self.count += len(addresses)
                    self.batches += 1
                    return []
            """
        )
        out = check_state_rules(index)
        assert _rules(out) == {"TWL009"}
        assert "'batches'" in out[0].message
        assert "write_batch" in out[0].message

    def test_scalar_only_effect_flagged(self):
        index = _index(
            parity="""
            class Scheme:
                def write(self, logical):
                    self.count += 1
                    self.serial_only += 1
                    return 1

                def write_batch(self, addresses):
                    self.count += len(addresses)
                    return []
            """
        )
        out = check_state_rules(index)
        assert _rules(out) == {"TWL009"}
        assert "'serial_only'" in out[0].message

    def test_effects_compared_transitively_through_helpers(self):
        index = _index(
            parity="""
            class Scheme:
                def _bump(self, n):
                    self.count += n

                def write(self, logical):
                    self._bump(1)
                    return 1

                def write_batch(self, addresses):
                    self.count += len(addresses)
                    return []
            """
        )
        assert check_state_rules(index) == []

    def test_scalar_write_resolved_through_base_class(self):
        index = _index(
            schemes__base="""
            class Base:
                def write(self, logical):
                    self.count += 1
                    return 1
            """,
            schemes__fast="""
            from schemes.base import Base

            class Fast(Base):
                def write_batch(self, addresses):
                    self.count += len(addresses)
                    self.batches += 1
                    return []
            """,
        )
        out = check_state_rules(index)
        assert _rules(out) == {"TWL009"}
        assert "'batches'" in out[0].message

    def test_class_without_write_batch_ignored(self):
        index = _index(
            parity="""
            class Scheme:
                def write(self, logical):
                    self.count += 1
                    return 1
            """
        )
        assert check_state_rules(index) == []
