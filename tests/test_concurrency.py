"""Concurrent writers against the cache and the checkpoint journal.

The campaign server (:mod:`repro.serve`) multiplexes many sessions over
one process and one cache directory, so the durability layer has to
survive contention it never saw under single-campaign CLI use:

* N threads and N processes putting/getting the *same* cache
  fingerprint must never corrupt an entry or observe a partial file —
  the tmp+``os.replace`` protocol under contention, plus the
  ``.json.corrupt`` quarantine staying silent when nothing is corrupt;
* concurrent journal appenders (distinct :class:`CheckpointJournal`
  instances on one path, threads and processes) must never interleave
  bytes within a record, and a ``compact()`` racing the appenders must
  never drop an acknowledged record;
* the opt-in ``exclusive=True`` owner lock must keep two live sessions
  out of one journal, break locks left by dead owners, and release on
  :meth:`~CheckpointJournal.close`.
"""

import os
import subprocess
import sys
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.config import ScaledArrayConfig
from repro.errors import ConfigError
from repro.exec import (
    CellCache,
    CheckpointJournal,
    attack_cell,
    cell_fingerprint,
    decode_result,
    encode_result,
    run_cells,
)

SCALED = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)


def _cell(seed: int = 11):
    return attack_cell("nowl", "scan", scaled=SCALED, seed=seed)


@pytest.fixture(scope="module")
def payload():
    """One real result, encoded so it crosses the spawn boundary."""
    result = run_cells([_cell()], jobs=1)[0]
    kind, record = encode_result(result)
    return kind, record


def _cache_contend(directory: str, kind: str, record: dict, rounds: int) -> int:
    """Worker body: hammer one fingerprint; returns corrupt count."""
    cache = CellCache(directory)
    cell = _cell()
    result = decode_result(kind, record)
    for _ in range(rounds):
        cache.put(cell, result)
        got = cache.get(cell)
        # A reader can never see a partial file: os.replace is atomic,
        # so every get() decodes a complete entry (identical bytes here,
        # since every writer writes the same result).
        assert got == result
    return cache.corrupt


def _journal_append(path: str, kind: str, record: dict, seeds: list) -> None:
    """Worker body: append one done-record per seed via a fresh journal."""
    journal = CheckpointJournal(path, compact_bytes=None)
    result = decode_result(kind, record)
    for seed in seeds:
        cell = _cell(seed)
        journal.record_done(cell, cell_fingerprint(cell), result)


class TestCacheContention:
    """Satellite: concurrent CellCache writers on one fingerprint."""

    def test_threads_same_fingerprint(self, tmp_path, payload):
        kind, record = payload
        directory = str(tmp_path / "cache")
        corrupt = []
        errors = []

        def work():
            try:
                corrupt.append(_cache_contend(directory, kind, record, rounds=50))
            except BaseException as error:  # noqa: B036 - recorded for assert
                errors.append(error)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert sum(corrupt) == 0
        # Exactly one entry, decodable, and no orphaned temp files.
        cache = CellCache(directory)
        assert len(cache) == 1
        assert cache.get(_cell()) == decode_result(kind, record)
        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers == []

    def test_processes_same_fingerprint(self, tmp_path, payload):
        kind, record = payload
        directory = str(tmp_path / "cache")
        with ProcessPoolExecutor(max_workers=4) as pool:
            corrupt = list(
                pool.map(
                    _cache_contend,
                    [directory] * 4,
                    [kind] * 4,
                    [record] * 4,
                    [20] * 4,
                )
            )
        assert sum(corrupt) == 0
        cache = CellCache(directory)
        assert len(cache) == 1
        assert cache.get(_cell()) == decode_result(kind, record)
        assert cache.corrupt == 0

    def test_quarantine_still_works_under_contention(self, tmp_path, payload):
        """A genuinely corrupt entry is quarantined exactly as before —
        contention hardening must not mask real corruption."""
        kind, record = payload
        cache = CellCache(str(tmp_path))
        cell = _cell()
        result = decode_result(kind, record)
        cache.put(cell, result)
        path = cache.path_for(cell_fingerprint(cell))
        with open(path, "wb") as handle:
            handle.write(b"\x00not json\x00")
        assert cache.get(cell) is None
        assert cache.corrupt == 1
        assert os.path.exists(f"{path}.corrupt")
        cache.put(cell, result)
        assert cache.get(cell) == result


class TestJournalConcurrentSessions:
    """Satellite: many sessions sharing one journal never lose records."""

    def test_threads_append_with_racing_compact(self, tmp_path, payload):
        kind, record = payload
        path = str(tmp_path / "journal.jsonl")
        stop = threading.Event()
        errors = []

        def compact_loop():
            journal = CheckpointJournal(path, compact_bytes=None)
            while not stop.is_set():
                try:
                    journal.compact()
                except BaseException as error:  # noqa: B036 - recorded
                    errors.append(error)
                    return

        def append(seeds):
            try:
                _journal_append(path, kind, record, seeds)
            except BaseException as error:  # noqa: B036 - recorded
                errors.append(error)

        seed_groups = [list(range(base, base + 12)) for base in (100, 200, 300, 400)]
        compactor = threading.Thread(target=compact_loop)
        writers = [threading.Thread(target=append, args=(g,)) for g in seed_groups]
        compactor.start()
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        stop.set()
        compactor.join()
        assert not errors, errors
        # Every acknowledged record survived the racing compactions.
        journal = CheckpointJournal(path, compact_bytes=None)
        expected = decode_result(kind, record)
        for group in seed_groups:
            for seed in group:
                fingerprint = cell_fingerprint(_cell(seed))
                assert journal.result_for(fingerprint) == expected, seed

    def test_processes_append_concurrently(self, tmp_path, payload):
        kind, record = payload
        path = str(tmp_path / "journal.jsonl")
        seed_groups = [list(range(base, base + 8)) for base in (10, 30, 50, 70)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            list(
                pool.map(
                    _journal_append,
                    [path] * 4,
                    [kind] * 4,
                    [record] * 4,
                    seed_groups,
                )
            )
        journal = CheckpointJournal(path, compact_bytes=None)
        expected = decode_result(kind, record)
        for group in seed_groups:
            for seed in group:
                assert journal.result_for(cell_fingerprint(_cell(seed))) == expected
        # No record interleaved into garbage: loading skipped nothing.
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == sum(len(g) for g in seed_groups)

    def test_compact_preserves_concurrent_append(self, tmp_path, payload):
        """The flock makes compact's read→rename atomic against
        appenders; simulate the historical torn window by hand and show
        the locked protocol closes it."""
        kind, record = payload
        path = str(tmp_path / "journal.jsonl")
        # A failed line per seed, each later superseded by a done line:
        # compact has exactly five superseded records to drop.
        scratch = CheckpointJournal(path, compact_bytes=None)
        for seed in range(5):
            scratch.record_failed(_cell(seed), cell_fingerprint(_cell(seed)), "boom")
        _journal_append(path, kind, record, list(range(5)))
        journal = CheckpointJournal(path, compact_bytes=None)
        dropped = journal.compact()
        assert dropped == 5
        reloaded = CheckpointJournal(path, compact_bytes=None)
        for seed in range(5):
            assert reloaded.result_for(cell_fingerprint(_cell(seed))) is not None


class TestExclusiveOwnerLock:
    """Satellite: ``exclusive=True`` keeps two live sessions apart."""

    def test_second_exclusive_open_fails_while_owned(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path, exclusive=True) as journal:
            assert journal._owns_exclusive
            with pytest.raises(ConfigError, match="exclusively owned"):
                CheckpointJournal(path, exclusive=True)
        # close() (via the context manager) released the lock.
        CheckpointJournal(path, exclusive=True).close()

    def test_non_exclusive_open_is_unaffected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path, exclusive=True):
            # Read-side consumers (status queries) stay welcome.
            CheckpointJournal(path)

    def test_stale_lock_from_dead_owner_is_broken(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        with open(f"{path}.owner", "w") as handle:
            handle.write(f"{proc.pid}\n")
        journal = CheckpointJournal(path, exclusive=True)
        assert journal._owns_exclusive
        journal.close()
        assert not os.path.exists(f"{path}.owner")

    def test_garbage_owner_file_is_broken(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(f"{path}.owner", "w") as handle:
            handle.write("not-a-pid\n")
        journal = CheckpointJournal(path, exclusive=True)
        assert journal._owns_exclusive
        journal.close()

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path, exclusive=True)
        journal.close()
        journal.close()
        CheckpointJournal(path, exclusive=True).close()

    def test_live_owner_lock_always_carries_its_pid(self, tmp_path):
        """The lock file is linked into place *with* its pid.

        The old O_EXCL-create-then-write protocol had a window where a
        live owner's lock existed but was still empty — a contender
        reading it then judged it garbage and broke it, leaving two
        exclusive owners on one journal.  The link protocol makes that
        state unrepresentable: the moment the path exists it names its
        owner, and no stray temp files are left behind.
        """
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path, exclusive=True):
            with open(f"{path}.owner") as handle:
                assert int(handle.read().strip()) == os.getpid()
            leftovers = [
                name for name in os.listdir(tmp_path)
                if name.endswith(".tmp")
            ]
            assert leftovers == []

    def test_contended_acquisition_yields_exactly_one_owner(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        winners, losers, errors = [], [], []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            try:
                journal = CheckpointJournal(path, exclusive=True)
            except ConfigError:
                losers.append(1)
            except Exception as error:  # noqa: BLE001 - must be visible
                errors.append(error)
            else:
                winners.append(journal)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(winners) == 1
        assert len(losers) == 7
        winners[0].close()
        assert not os.path.exists(f"{path}.owner")
