"""Tests for the PCM array wear model."""

import numpy as np
import pytest

from repro.config import PCMConfig
from repro.errors import AddressError, ConfigError, PageWornOutError
from repro.pcm.array import PCMArray


class TestConstruction:
    def test_from_endurance(self, tiny_array):
        assert tiny_array.n_pages == 8
        assert tiny_array.total_writes == 0
        assert not tiny_array.has_failure

    def test_uniform(self):
        array = PCMArray.uniform(4, 500)
        assert (array.endurance == 500).all()

    def test_from_config(self, rng):
        config = PCMConfig(
            capacity_bytes=256 * 4096, endurance_mean=1000, endurance_sigma_fraction=0.1
        )
        array = PCMArray.from_config(config, rng)
        assert array.n_pages == 256
        assert (array.endurance > 0).all()

    def test_from_config_tail_faithful(self, rng):
        config = PCMConfig(
            capacity_bytes=256 * 4096, endurance_mean=1000, endurance_sigma_fraction=0.1
        )
        array = PCMArray.from_config(config, rng, tail_faithful_reference=1 << 23)
        assert array.endurance.min() < 700

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            PCMArray(np.array([], dtype=np.int64))

    def test_rejects_nonpositive_endurance(self):
        with pytest.raises(ConfigError):
            PCMArray(np.array([10, 0]))


class TestScalarWrites:
    def test_write_counts(self, tiny_array):
        tiny_array.write(3)
        tiny_array.write(3)
        assert tiny_array.page_writes(3) == 2
        assert tiny_array.total_writes == 2

    def test_failure_detected_at_endurance(self, tiny_array):
        for _ in range(100):
            tiny_array.write(0)
        assert tiny_array.has_failure
        failure = tiny_array.first_failure
        assert failure.physical_page == 0
        assert failure.device_writes == 100
        assert failure.page_endurance == 100

    def test_only_first_failure_recorded(self, tiny_array):
        for _ in range(100):
            tiny_array.write(0)
        for _ in range(200):
            tiny_array.write(1)
        assert tiny_array.first_failure.physical_page == 0

    def test_fail_fast_raises(self):
        array = PCMArray(np.array([3, 3]), fail_fast=True)
        array.write(0)
        array.write(0)
        with pytest.raises(PageWornOutError):
            array.write(0)

    def test_out_of_range(self, tiny_array):
        with pytest.raises(AddressError):
            tiny_array.write(8)
        with pytest.raises(AddressError):
            tiny_array.page_writes(-1)


class TestWriteMany:
    def test_bulk_counts(self, tiny_array):
        tiny_array.write_many(2, 50)
        assert tiny_array.page_writes(2) == 50

    def test_failure_attribution_mid_burst(self, tiny_array):
        tiny_array.write_many(0, 250)  # endurance 100
        failure = tiny_array.first_failure
        assert failure.physical_page == 0
        assert failure.device_writes == 100

    def test_zero_count_noop(self, tiny_array):
        tiny_array.write_many(0, 0)
        assert tiny_array.total_writes == 0

    def test_rejects_negative(self, tiny_array):
        with pytest.raises(ValueError):
            tiny_array.write_many(0, -1)


class TestBulkApply:
    def test_apply_counts(self, uniform_array):
        counts = np.full(16, 10, dtype=np.int64)
        uniform_array.apply_write_counts(counts)
        assert uniform_array.total_writes == 160
        assert (uniform_array.write_counts() == 10).all()

    def test_failure_fluid_attribution(self):
        array = PCMArray(np.array([100, 1000]))
        counts = np.array([200, 200])
        array.apply_write_counts(counts)
        failure = array.first_failure
        assert failure.physical_page == 0
        # Page 0 fails halfway through its share of the chunk.
        assert 150 <= failure.device_writes <= 250

    def test_mixed_scalar_then_bulk(self, uniform_array):
        uniform_array.write(0)
        uniform_array.apply_write_counts(np.ones(16, dtype=np.int64))
        assert uniform_array.page_writes(0) == 2
        assert uniform_array.total_writes == 17

    def test_rejects_wrong_shape(self, uniform_array):
        with pytest.raises(ConfigError):
            uniform_array.apply_write_counts(np.ones(4, dtype=np.int64))

    def test_rejects_negative_counts(self, uniform_array):
        with pytest.raises(ConfigError):
            uniform_array.apply_write_counts(np.full(16, -1, dtype=np.int64))


class TestInspection:
    def test_remaining(self, tiny_array):
        tiny_array.write_many(0, 40)
        remaining = tiny_array.remaining()
        assert remaining[0] == 60
        assert remaining[7] == 800

    def test_wear_fraction(self, tiny_array):
        tiny_array.write_many(1, 100)
        assert tiny_array.wear_fraction()[1] == pytest.approx(0.5)

    def test_utilization(self, tiny_array):
        tiny_array.write_many(7, 360)  # total endurance = 3600
        assert tiny_array.utilization() == pytest.approx(0.1)

    def test_weakest_pages(self, tiny_array):
        weakest = tiny_array.weakest_pages(3)
        assert list(weakest) == [0, 1, 2]

    def test_weakest_pages_bounds(self, tiny_array):
        with pytest.raises(ValueError):
            tiny_array.weakest_pages(0)
        with pytest.raises(ValueError):
            tiny_array.weakest_pages(9)

    def test_endurance_capacity(self, tiny_array):
        assert tiny_array.endurance_capacity() == 3600

    def test_repr(self, tiny_array):
        assert "PCMArray" in repr(tiny_array)


class TestApplyBatch:
    """Ordered-batch application with exact first-failure attribution."""

    def test_matches_serial_writes_exactly(self, tiny_array):
        serial = PCMArray(tiny_array.endurance.copy())
        sequence = [0, 1, 2, 0, 1, 0, 7, 7, 3]
        for page in sequence:
            serial.write(page)
        applied = tiny_array.apply_batch(sequence)
        assert applied == len(sequence)
        assert np.array_equal(tiny_array.write_counts(), serial.write_counts())
        assert tiny_array.total_writes == serial.total_writes

    def test_failure_attributed_to_exact_write(self):
        array = PCMArray(np.array([3, 100]))
        # Page 0's 3rd write (position 4, device write 5) is the failure.
        applied = array.apply_batch([0, 1, 0, 1, 0, 1, 1])
        assert applied == 5  # application truncates at the failing write
        assert array.failed
        assert array.first_failure.physical_page == 0
        assert array.first_failure.device_writes == 5
        assert array.total_writes == 5

    def test_earliest_crossing_wins(self):
        array = PCMArray(np.array([2, 2]))
        # Both pages cross in this batch; page 1 crosses first (pos 2).
        array.apply_batch([0, 1, 1, 0])
        assert array.first_failure.physical_page == 1
        assert array.first_failure.device_writes == 3

    def test_identical_to_serial_at_failure(self, rng):
        endurance = rng.integers(20, 60, size=16)
        sequence = rng.integers(0, 16, size=2000).tolist()
        serial = PCMArray(endurance.copy())
        for page in sequence:
            serial.write(page)
            if serial.failed:
                break
        batched = PCMArray(endurance.copy())
        position = 0
        while position < len(sequence) and not batched.failed:
            batched.apply_batch(sequence[position : position + 37])
            position += 37
        assert batched.failed == serial.failed
        assert batched.first_failure == serial.first_failure

    def test_rejects_out_of_range(self, tiny_array):
        with pytest.raises(AddressError):
            tiny_array.apply_batch([0, 8])
        with pytest.raises(AddressError):
            tiny_array.apply_batch([-1])

    def test_rejects_non_1d(self, tiny_array):
        with pytest.raises(ConfigError):
            tiny_array.apply_batch(np.zeros((2, 2), dtype=np.int64))

    def test_empty_batch_is_noop(self, tiny_array):
        assert tiny_array.apply_batch([]) == 0
        assert tiny_array.total_writes == 0

    def test_fail_fast_raises_on_batch_failure(self):
        array = PCMArray(np.array([2, 50]), fail_fast=True)
        with pytest.raises(PageWornOutError):
            array.apply_batch([0, 0, 1])


class TestCanonicalState:
    """The numpy arrays are the single source of truth for wear state."""

    def test_mixed_scalar_and_bulk_paths(self, tiny_array):
        tiny_array.write(0)
        tiny_array.write_many(1, 10)
        tiny_array.apply_write_counts(
            np.array([1, 0, 2, 0, 0, 0, 0, 0], dtype=np.int64)
        )
        tiny_array.write(2)
        tiny_array.apply_batch([3, 3, 4])
        tiny_array.write_many(5, 4)
        counts = tiny_array.write_counts()
        assert list(counts) == [2, 10, 3, 2, 1, 4, 0, 0]
        assert tiny_array.total_writes == 22
        assert tiny_array.page_writes(1) == 10  # scalar view agrees

    def test_scalar_writes_after_vectorized_batch(self, tiny_array):
        """The promoted-mirror hazard: scalar writes right after a bulk
        batch must land on the same canonical array the batch updated
        (the old design kept two copies and a dirty flag here)."""
        tiny_array.apply_batch([0] * 5 + [1] * 3)
        tiny_array.write(0)
        tiny_array.write(1)
        assert tiny_array.page_writes(0) == 6
        assert tiny_array.page_writes(1) == 4
        assert int(tiny_array.write_counts().sum()) == tiny_array.total_writes
        # ... and a bulk batch right after scalar writes sees them too:
        tiny_array.apply_batch([0])
        assert tiny_array.page_writes(0) == 7
        assert tiny_array.total_writes == 11

    def test_write_counts_returns_a_copy(self, tiny_array):
        tiny_array.write(0)
        snapshot = tiny_array.write_counts()
        snapshot[0] = 999
        assert tiny_array.page_writes(0) == 1

    def test_endurance_is_frozen_read_only(self, tiny_array):
        """Endurance is immutable after format time; an in-place
        mutation raises at the offending statement instead of silently
        corrupting later failure attribution."""
        with pytest.raises(ValueError, match="read-only"):
            tiny_array.endurance[0] += 1
        # Reads (and derived arrays) still work.
        assert tiny_array.page_endurance(0) == tiny_array.endurance[0]
        assert (tiny_array.remaining() == tiny_array.endurance).all()
