"""Tests for the endurance table, write counter table and WNT."""

import numpy as np
import pytest

from repro.errors import AddressError, TableError
from repro.tables.endurance_table import EnduranceTable
from repro.tables.write_counter import WriteCounterTable
from repro.tables.wnt import WriteNumberTable


class TestEnduranceTable:
    def test_lookup(self):
        table = EnduranceTable([100, 200, 300])
        assert table.lookup(1) == 200

    def test_entry_bits_default(self):
        assert EnduranceTable([1]).entry_bits == 27  # the paper's ET width

    def test_saturation_at_entry_width(self):
        table = EnduranceTable([1 << 30], bits=27)
        assert table.lookup(0) == (1 << 27) - 1
        assert table.saturated_entries == 1

    def test_paper_endurance_fits_27_bits(self):
        table = EnduranceTable([100_000_000], bits=27)
        assert table.saturated_entries == 0

    def test_sorted_by_endurance(self):
        table = EnduranceTable([30, 10, 20])
        assert list(table.sorted_by_endurance()) == [1, 2, 0]

    def test_as_array_is_copy(self):
        table = EnduranceTable([5, 6])
        copy = table.as_array()
        copy[0] = 999
        assert table.lookup(0) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(TableError):
            EnduranceTable([0, 1])

    def test_rejects_bad_width(self):
        with pytest.raises(TableError):
            EnduranceTable([1], bits=0)

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            EnduranceTable([1]).lookup(1)


class TestWriteCounterTable:
    def test_triggers_at_interval(self):
        table = WriteCounterTable(2, bits=7, interval=4)
        results = [table.record_write(0) for _ in range(8)]
        assert results == [False, False, False, True, False, False, False, True]

    def test_interval_one_always_triggers(self):
        table = WriteCounterTable(1, bits=7, interval=1)
        assert all(table.record_write(0) for _ in range(10))

    def test_counters_independent(self):
        table = WriteCounterTable(2, interval=2)
        table.record_write(0)
        assert table.value(0) == 1
        assert table.value(1) == 0

    def test_force_trigger_next(self):
        table = WriteCounterTable(1, interval=32)
        table.force_trigger_next(0)
        assert table.record_write(0) is True
        assert table.record_write(0) is False

    def test_reset(self):
        table = WriteCounterTable(1, interval=8)
        table.record_write(0)
        table.reset(0)
        assert table.value(0) == 0

    def test_entry_bits(self):
        assert WriteCounterTable(1, bits=7, interval=32).entry_bits == 7

    def test_rejects_interval_exceeding_counter(self):
        with pytest.raises(TableError):
            WriteCounterTable(1, bits=3, interval=8)

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            WriteCounterTable(2, interval=2).record_write(2)


class TestWriteNumberTable:
    def test_records_counts(self):
        table = WriteNumberTable(4)
        for _ in range(3):
            table.record_write(2)
        assert table.count(2) == 3
        assert table.total == 3

    def test_hottest_first_ordering(self):
        table = WriteNumberTable(4)
        for page, count in ((0, 2), (1, 5), (2, 1), (3, 5)):
            for _ in range(count):
                table.record_write(page)
        order = list(table.hottest_first())
        assert order[:2] == [1, 3]  # ties break toward lower addresses
        assert order[2:] == [0, 2]

    def test_saturates(self):
        table = WriteNumberTable(1, bits=2)
        for _ in range(10):
            table.record_write(0)
        assert table.count(0) == 3

    def test_clear(self):
        table = WriteNumberTable(2)
        table.record_write(0)
        table.clear()
        assert table.count(0) == 0
        assert table.total == 0

    def test_counts_copy(self):
        table = WriteNumberTable(2)
        counts = table.counts()
        counts[0] = 99
        assert table.count(0) == 0

    def test_rejects_empty(self):
        with pytest.raises(TableError):
            WriteNumberTable(0)

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            WriteNumberTable(2).record_write(5)
