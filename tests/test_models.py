"""Tests cross-validating the closed-form models against simulation.

These are the reproduction's strongest internal-consistency checks: the
paper's Equation-1/2 swap-probability model and our wear-share extension
must predict what the actual TWL engine does on isolated pairs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.models import (
    choose_a_probability,
    interval_swap_ratio,
    markov_pair_wear_shares,
    markov_swap_probability,
    pair_lifetime_fraction,
    pair_wear_shares,
    slot_repeat_probability,
    swap_probability,
    uniform_wear_lifetime_fraction,
)
from repro.config import TWLConfig
from repro.core.twl import TossUpWearLeveling
from repro.errors import ConfigError
from repro.pcm.array import PCMArray
from repro.rng.xorshift import XorShift32


def _simulate_pair(endurance_a, endurance_b, p, writes=40_000, interval=1):
    """Drive an isolated TWL pair with i.i.d. slot choice."""
    array = PCMArray(np.array([endurance_a, endurance_b], dtype=np.int64))
    config = TWLConfig(toss_up_interval=interval, inter_pair_swap_interval=10**9)
    scheme = TossUpWearLeveling(array, config=config, seed=11)
    rng = XorShift32(seed=97)
    demand = 0
    for _ in range(writes):
        slot = 0 if rng.next_unit() < p else 1
        scheme.write(slot)
        demand += 1
        if array.failed:
            break
    return array, scheme, demand


class TestPaperEquation:
    def test_case_1_equal_endurance(self):
        assert swap_probability(0.7, 100, 100) == pytest.approx(0.5)

    def test_case_2_consistent_hot_on_strong(self):
        assert swap_probability(0.999, 10**6, 1) < 0.01

    def test_case_3_inverted(self):
        assert swap_probability(0.001, 10**6, 1) > 0.99

    def test_case_4_alternating(self):
        assert swap_probability(0.5, 10**6, 1) == pytest.approx(0.5)

    @given(
        st.floats(0.0, 1.0),
        st.floats(1.0, 1e6),
        st.floats(1.0, 1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_bounds(self, p, ea, eb):
        assert 0.0 <= swap_probability(p, ea, eb) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            swap_probability(1.5, 1, 1)
        with pytest.raises(ConfigError):
            swap_probability(0.5, 0, 1)


class TestSimulationAgreement:
    """The real engine must match the Markov closed forms on pairs."""

    @pytest.mark.parametrize(
        "ea,eb,p",
        [(900, 100, 0.5), (700, 300, 0.8), (500, 500, 0.5), (800, 200, 0.2)],
    )
    def test_wear_shares_match_markov(self, ea, eb, p):
        scale = 40  # scale endurance up so the pair survives the sample
        array, scheme, demand = _simulate_pair(ea * scale, eb * scale, p)
        predicted = markov_pair_wear_shares(p, ea, eb)
        wear = array.write_counts()
        measured_share_b = wear[1] / wear.sum()
        assert measured_share_b == pytest.approx(predicted.share_b, abs=0.02)

    @pytest.mark.parametrize(
        "ea,eb,p", [(900, 100, 0.5), (600, 400, 0.9), (700, 300, 0.8)]
    )
    def test_swap_ratio_matches_markov(self, ea, eb, p):
        array, scheme, demand = _simulate_pair(ea * 40, eb * 40, p)
        predicted = markov_swap_probability(p, ea, eb)
        measured = scheme.swap_judge.swapped / (
            scheme.swap_judge.swapped + scheme.swap_judge.direct
        )
        assert measured == pytest.approx(predicted, abs=0.02)

    def test_alternating_stream_wears_evenly(self):
        # s = 0: strict alternation defeats endurance-proportional
        # allocation entirely — the Case-4 bound made precise.
        array = PCMArray(np.array([90_000, 10_000], dtype=np.int64))
        config = TWLConfig(toss_up_interval=1, inter_pair_swap_interval=10**9)
        scheme = TossUpWearLeveling(array, config=config, seed=5)
        for step in range(40_000):
            scheme.write(step % 2)
        wear = array.write_counts()
        predicted = markov_pair_wear_shares(0.5, 9, 1, repeat_probability=0.0)
        assert wear[1] / wear.sum() == pytest.approx(predicted.share_b, abs=0.02)
        assert predicted.share_b == pytest.approx(0.5, abs=1e-9)

    def test_repeat_stream_wears_proportionally(self):
        # s = 1: a hammered page is allocated nearly proportionally to
        # endurance, the PV-protection the paper designs for.
        predicted = markov_pair_wear_shares(1.0, 900, 100, repeat_probability=1.0)
        assert predicted.share_b < 0.2

    def test_lifetime_fraction_matches(self):
        ea, eb, p = 30_000, 10_000, 0.5
        array, scheme, demand = _simulate_pair(ea, eb, p, writes=10**7)
        assert array.failed
        predicted = pair_lifetime_fraction(p, ea, eb)
        measured = demand / (ea + eb)
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_interval_reduces_swap_ratio(self):
        # Interval gating cuts the swap/write ratio close to 1/interval;
        # the division is approximate because the partner's tosses can
        # displace a page between its own (rarer) tosses, raising the
        # per-toss swap probability somewhat.
        ea, eb, p = 36_000, 4_000, 0.5
        _, scheme_1, demand_1 = _simulate_pair(ea, eb, p, writes=30_000, interval=1)
        _, scheme_8, demand_8 = _simulate_pair(ea, eb, p, writes=30_000, interval=8)
        ratio_1 = scheme_1.swap_judge.swapped / demand_1
        ratio_8 = scheme_8.swap_judge.swapped / demand_8
        assert ratio_1 / 12 < ratio_8 < ratio_1 / 4
        predicted = interval_swap_ratio(markov_swap_probability(p, ea, eb), 8)
        assert ratio_8 == pytest.approx(predicted, rel=0.5)

    def test_paper_equation_agrees_where_memoryless(self):
        """Where arrangement memory is irrelevant, both models agree.

        Case-1/Case-4 (symmetric) coincide exactly; Case-2 (consistent
        hot-on-strong) agrees in the -> 0 limit.  Case-3 (p -> 0) is a
        *transient* in the paper's own words ("After Case-3 occurs ...
        the situation turns into Case-2"): the steady-state engine swaps
        once and then parks, which the Markov model captures and the
        memoryless equation does not.
        """
        assert markov_swap_probability(0.5, 1.0, 1.0) == pytest.approx(
            swap_probability(0.5, 1.0, 1.0)
        )
        assert markov_swap_probability(0.5, 9.0, 1.0) == pytest.approx(
            swap_probability(0.5, 9.0, 1.0)
        )
        assert markov_swap_probability(1.0, 1e6, 1.0) < 1e-5
        assert swap_probability(1.0, 1e6, 1.0) < 1e-5
        # The transient Case-3 disagreement, stated explicitly:
        assert swap_probability(0.0, 1e6, 1.0) > 0.99
        assert markov_swap_probability(0.0, 1e6, 1.0) < 1e-5

    def test_repeat_probability_formula(self):
        assert slot_repeat_probability(0.5) == pytest.approx(0.5)
        assert slot_repeat_probability(1.0) == pytest.approx(1.0)
        assert slot_repeat_probability(0.9) == pytest.approx(0.82)


class TestUniformWearBound:
    def test_pins_security_refresh(self):
        # SR at the paper's parameters: ~0.42-0.44 of ideal.
        bound = uniform_wear_lifetime_fraction(0.11, 8 * 1024 * 1024, 0.016)
        assert 0.40 < bound < 0.45

    def test_no_variation_is_unity(self):
        assert uniform_wear_lifetime_fraction(0.0, 10**6) == pytest.approx(1.0)

    def test_overhead_derates(self):
        base = uniform_wear_lifetime_fraction(0.11, 10**6)
        loaded = uniform_wear_lifetime_fraction(0.11, 10**6, overhead_ratio=0.5)
        assert loaded == pytest.approx(base / 1.5)

    def test_matches_measured_sr(self, small_scaled):
        from repro.sim.runner import measure_attack_lifetime

        result = measure_attack_lifetime("sr", "scan", scaled=small_scaled)
        bound = uniform_wear_lifetime_fraction(
            small_scaled.endurance_sigma_fraction,
            small_scaled.reference.n_pages,
            overhead_ratio=result.overhead_ratio,
        )
        assert result.lifetime_fraction == pytest.approx(bound, rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigError):
            uniform_wear_lifetime_fraction(1.5, 100)
        with pytest.raises(ConfigError):
            uniform_wear_lifetime_fraction(0.1, 0)
        with pytest.raises(ConfigError):
            uniform_wear_lifetime_fraction(0.1, 100, overhead_ratio=-1)


class TestChooseA:
    def test_proportional(self):
        assert choose_a_probability(300, 100) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ConfigError):
            choose_a_probability(-1, 1)
