"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigError",
            "AddressError",
            "PageWornOutError",
            "TableError",
            "TraceError",
            "SimulationError",
            "ExtrapolationError",
        ):
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.ReproError)

    def test_single_except_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.TraceError("x")

    def test_page_worn_out_carries_context(self):
        error = errors.PageWornOutError(7, 101, 100)
        assert error.physical_page == 7
        assert error.writes == 101
        assert error.endurance == 100
        assert "7" in str(error)
        assert "101" in str(error)

    def test_repro_error_not_caught_as_value_error(self):
        # Library errors are distinct from builtin families.
        assert not issubclass(errors.ReproError, ValueError)
