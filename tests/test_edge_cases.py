"""Edge-case coverage across modules."""

import numpy as np
import pytest

from repro.attacks.scan import ScanWriteAttack
from repro.errors import ExtrapolationError
from repro.pcm.array import PCMArray
from repro.sim.drivers import AttackDriver, TraceDriver
from repro.sim.fastforward import FastForwardConfig, fast_forward_to_failure
from repro.traces.request import OP_READ
from repro.traces.trace import Trace
from repro.wearlevel.nowl import NoWearLeveling


class TestDriverEdges:
    def test_negative_quota_rejected(self):
        array = PCMArray.uniform(4, 100)
        scheme = NoWearLeveling(array)
        driver = AttackDriver(ScanWriteAttack(4))
        with pytest.raises(ValueError):
            driver.drive(scheme, -1)
        trace_driver = TraceDriver(Trace.writes_only([0]), 4)
        with pytest.raises(ValueError):
            trace_driver.drive(scheme, -1)

    def test_zero_quota_noop(self):
        array = PCMArray.uniform(4, 100)
        scheme = NoWearLeveling(array)
        driver = AttackDriver(ScanWriteAttack(4))
        assert driver.drive(scheme, 0) == 0
        assert array.total_writes == 0


class TestTraceEdges:
    def test_reads_only_trace_histogram_is_empty(self):
        trace = Trace(
            np.array([OP_READ, OP_READ], dtype=np.uint8),
            np.array([1, 2], dtype=np.int64),
        )
        histogram = trace.write_histogram(4)
        assert histogram.sum() == 0

    def test_write_fraction_zero(self):
        trace = Trace(
            np.array([OP_READ], dtype=np.uint8), np.array([0], dtype=np.int64)
        )
        assert trace.write_fraction == 0.0
        assert list(trace.write_pages()) == []

    def test_repr_mentions_name(self):
        assert "demo" in repr(Trace.writes_only([0], name="demo"))


class TestFastForwardEdges:
    def test_max_rounds_exhaustion(self):
        """A workload that never revisits pages defeats rate estimation
        and must terminate with ExtrapolationError, not hang."""

        class OneShotDriver(TraceDriver):
            pass

        array = PCMArray.uniform(1024, 10**9)
        scheme = NoWearLeveling(array)
        # Visit each page once per full loop: with endurance 1e9 the
        # time-to-death estimate stays astronomically far, jumps are
        # capped by the doubling rule and rounds run out.
        driver = TraceDriver(Trace.writes_only(list(range(1024))), 1024)
        config = FastForwardConfig(
            warmup_demand=512, window_demand=512, max_rounds=3
        )
        with pytest.raises(ExtrapolationError):
            fast_forward_to_failure(scheme, driver, config=config)


class TestArrayEdges:
    def test_wear_fraction_is_float(self):
        array = PCMArray.uniform(2, 7)
        array.write(0)
        fractions = array.wear_fraction()
        assert fractions.dtype == np.float64
        assert fractions[0] == pytest.approx(1 / 7)

    def test_write_counts_is_copy(self):
        array = PCMArray.uniform(2, 10)
        counts = array.write_counts()
        counts[0] = 99
        assert array.page_writes(0) == 0

    def test_endurance_copy_on_init(self):
        source = np.array([10, 20])
        array = PCMArray(source)
        source[0] = 999
        assert array.endurance[0] == 10


class TestConfigEdges:
    def test_scaled_config_carries_sigma(self):
        from repro.config import ScaledArrayConfig

        scaled = ScaledArrayConfig(
            n_pages=64, endurance_mean=100.0, endurance_sigma_fraction=0.2
        )
        pcm = scaled.to_pcm_config()
        assert pcm.endurance_sigma_fraction == 0.2

    def test_timing_read_write_distinct(self):
        from repro.config import TimingConfig

        timing = TimingConfig()
        assert timing.read_cycles < timing.write_cycles
