"""Tests for the xorshift32 generator."""

import pytest

from repro.errors import ConfigError
from repro.rng.xorshift import XorShift32


class TestXorShift32:
    def test_deterministic(self):
        a = XorShift32(seed=42)
        b = XorShift32(seed=42)
        assert [a.next_word() for _ in range(100)] == [b.next_word() for _ in range(100)]

    def test_seeds_differ(self):
        a = XorShift32(seed=1)
        b = XorShift32(seed=2)
        assert [a.next_word() for _ in range(10)] != [b.next_word() for _ in range(10)]

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigError):
            XorShift32(seed=0)

    def test_words_in_range(self):
        rng = XorShift32(seed=7)
        for _ in range(1000):
            assert 0 <= rng.next_word() <= 0xFFFFFFFF

    def test_unit_in_range(self):
        rng = XorShift32(seed=7)
        for _ in range(1000):
            assert 0.0 <= rng.next_unit() < 1.0

    def test_next_below_uniform_enough(self):
        rng = XorShift32(seed=7)
        counts = [0] * 8
        for _ in range(8000):
            counts[rng.next_below(8)] += 1
        assert min(counts) > 800
        assert max(counts) < 1200

    def test_next_below_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            XorShift32(seed=1).next_below(0)

    def test_no_short_cycles(self):
        rng = XorShift32(seed=99)
        seen = set()
        for _ in range(10_000):
            word = rng.next_word()
            assert word not in seen
            seen.add(word)
