"""Sub-cell recovery: crash-consistent snapshot/restore bit-identity.

The contract under test (``docs/robustness.md``): a run killed at an
arbitrary demand index and resumed from its last snapshot produces a
:class:`~repro.sim.lifetime.LifetimeResult` bit-identical to the
uninterrupted run — for **every** registered scheme, under attacks and
under the streamed FTL workload, with and without soft-error injection.
Snapshot *emission* must be inert (a cadenced run equals a plain run),
and the container format must fail loudly on any corruption instead of
resuming from garbage.

The crash here is simulated in-process (drive partway, emit, abandon
the engine); the real-SIGKILL integration — fault-plan ``kill`` mode
through the process pool and the checkpoint journal — lives in
``tests/test_resilience.py``.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.config import ScaledArrayConfig, SoftErrorConfig
from repro.attacks.registry import make_attack
from repro.engine import (
    SNAPSHOT_MAGIC,
    SimulationEngine,
    SnapshotPlan,
    discard_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.errors import ConfigError, SimulationError, SnapshotError
from repro.exec import attack_cell, cell_snapshot_path, run_cell, stream_cell
from repro.sim.drivers import AttackDriver, StreamDriver
from repro.sim.runner import (
    build_array,
    measure_attack_lifetime,
    measure_stream_lifetime,
)
from repro.traces.registry import make_stream
from repro.wearlevel.registry import make_scheme, scheme_names

SCALED = ScaledArrayConfig(n_pages=256, endurance_mean=1024.0)
SEED = 11
EVERY = 3000
#: Streamed runs are capped (the FTL generator is endless at this
#: scale for the strong schemes); identity is asserted on the capped
#: outcome either way.
STREAM_CAP = 120_000
CHUNK = 512


def _ftl_factory(n_pages: int):
    return make_stream("ftl", n_pages, seed=SEED, chunk_size=CHUNK)


def _attack_engine(scheme_name: str, plan: SnapshotPlan) -> SimulationEngine:
    """A fresh scan-attack engine matching ``measure_attack_lifetime``."""
    array = build_array(SCALED)
    scheme = make_scheme(scheme_name, array, seed=SEED)
    attack = make_attack("scan", scheme.logical_pages, seed=SEED)
    return SimulationEngine(
        scheme, AttackDriver(attack), batch_size=16, snapshots=plan
    )


def _stream_engine(scheme_name: str, plan: SnapshotPlan) -> SimulationEngine:
    """A fresh streamed-FTL engine matching ``measure_stream_lifetime``."""
    array = build_array(SCALED)
    scheme = make_scheme(scheme_name, array, seed=SEED)
    stream = _ftl_factory(scheme.logical_pages)
    driver = StreamDriver(stream, scheme.logical_pages)
    return SimulationEngine(scheme, driver, batch_size=16, snapshots=plan)


class TestSnapshotContainer:
    def _state(self):
        return {
            "counters": np.arange(10, dtype=np.int64),
            "wear": np.linspace(0.0, 1.0, 7),
            "nested": {"gap": 3, "flags": [True, None, "x"]},
        }

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, self._state(), meta={"demand": 123})
        meta, state = read_snapshot(path)
        assert meta == {"demand": 123}
        assert state["nested"] == {"gap": 3, "flags": [True, None, "x"]}
        assert np.array_equal(state["counters"], np.arange(10, dtype=np.int64))
        assert state["counters"].dtype == np.int64
        assert np.array_equal(state["wear"], np.linspace(0.0, 1.0, 7))

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "s.snap")
        with open(path, "wb") as handle:
            handle.write(b"NOTASNAP" + b"\x00" * 64)
        with pytest.raises(SnapshotError, match="bad magic"):
            read_snapshot(path)

    def test_truncation_rejected(self, tmp_path):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, self._state())
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:-5])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(path)

    def test_corruption_fails_crc(self, tmp_path):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, self._state())
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[len(SNAPSHOT_MAGIC) + 25] ^= 0xFF  # flip a header byte
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(SnapshotError, match="CRC"):
            read_snapshot(path)

    def test_missing_file_is_a_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot(str(tmp_path / "absent.snap"))

    def test_unserializable_state_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot serialize"):
            write_snapshot(str(tmp_path / "s.snap"), {"bad": object()})

    def test_discard_removes_snapshot_and_temps(self, tmp_path):
        path = str(tmp_path / "cell.snap")
        write_snapshot(path, self._state())
        for pid in (111, 222):
            with open(f"{path}.{pid}.tmp", "wb") as handle:
                handle.write(b"partial")
        discard_snapshot(path)
        assert os.listdir(str(tmp_path)) == []
        discard_snapshot(path)  # idempotent on missing files

    def test_plan_validation(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotPlan(path="")
        with pytest.raises(SnapshotError):
            SnapshotPlan(path="x.snap", every=0)
        with pytest.raises(SnapshotError):
            SnapshotPlan(path="x.snap", seconds=-1.0, clock=lambda: 0.0)
        with pytest.raises(SnapshotError, match="clock"):
            SnapshotPlan(path="x.snap", seconds=5.0)


class TestEmissionInert:
    """A cadenced run computes exactly what a plain run computes."""

    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_attack_cadence_is_inert(self, scheme_name, tmp_path):
        plain = measure_attack_lifetime(
            scheme_name, "scan", scaled=SCALED, seed=SEED, batch_size=16
        )
        plan = SnapshotPlan(
            path=str(tmp_path / "cell.snap"), every=EVERY, resume=False
        )
        cadenced = measure_attack_lifetime(
            scheme_name,
            "scan",
            scaled=SCALED,
            seed=SEED,
            batch_size=16,
            snapshots=plan,
        )
        assert cadenced == plain
        assert os.path.exists(plan.path)  # it did emit

    def test_time_cadence_uses_injected_clock_only(self, tmp_path):
        ticks = iter(float(n) for n in range(10_000))
        plan = SnapshotPlan(
            path=str(tmp_path / "cell.snap"),
            seconds=2.0,
            clock=lambda: next(ticks),
            resume=False,
        )
        plain = measure_attack_lifetime(
            "nowl", "scan", scaled=SCALED, seed=SEED, batch_size=16
        )
        timed = measure_attack_lifetime(
            "nowl",
            "scan",
            scaled=SCALED,
            seed=SEED,
            batch_size=16,
            snapshots=plan,
        )
        assert timed == plain
        assert os.path.exists(plan.path)


class TestKillResumeIdentity:
    """Crash at an arbitrary demand index; resume; compare bit-exactly."""

    def _crash_and_resume(self, scheme_name, build_engine, measure, tmp_path):
        path = str(tmp_path / "cell.snap")
        emit_plan = SnapshotPlan(path=path, every=EVERY, resume=False)
        dying = build_engine(scheme_name, emit_plan)
        # "Crash" partway between two snapshot boundaries: the last
        # durable state is the EVERY*2 boundary, and everything the
        # engine did after it is lost — exactly what SIGKILL leaves.
        dying.drive(EVERY * 2 + 517)
        assert dying.snapshots_written >= 2
        _meta, saved = read_snapshot(path)
        assert saved["demand_served"] == EVERY * 2
        resume_plan = SnapshotPlan(path=path, every=EVERY, resume=True)
        return measure(scheme_name, snapshots=resume_plan)

    def _measure_attack(self, scheme_name, snapshots=None):
        return measure_attack_lifetime(
            scheme_name,
            "scan",
            scaled=SCALED,
            seed=SEED,
            batch_size=16,
            snapshots=snapshots,
        )

    def _measure_stream(self, scheme_name, snapshots=None):
        return measure_stream_lifetime(
            scheme_name,
            _ftl_factory,
            scaled=SCALED,
            seed=SEED,
            batch_size=16,
            max_demand=STREAM_CAP,
            require_failure=False,
            snapshots=snapshots,
        )

    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_attack_resume_is_bit_identical(self, scheme_name, tmp_path):
        clean = self._measure_attack(scheme_name)
        resumed = self._crash_and_resume(
            scheme_name, _attack_engine, self._measure_attack, tmp_path
        )
        assert resumed == clean

    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_streamed_ftl_resume_is_bit_identical(self, scheme_name, tmp_path):
        clean = self._measure_stream(scheme_name)
        resumed = self._crash_and_resume(
            scheme_name, _stream_engine, self._measure_stream, tmp_path
        )
        assert resumed == clean

    @pytest.mark.parametrize("scheme_name", ("twl", "sr", "bwl"))
    def test_resume_with_soft_errors(self, scheme_name, tmp_path):
        """Restore must rebuild the injector against the fresh scheme."""
        faults = SoftErrorConfig(rate=2e-4)

        def build(name, plan):
            array = build_array(SCALED)
            scheme = make_scheme(name, array, seed=SEED)
            from repro.pcm.softerrors import SoftErrorInjector

            injector = SoftErrorInjector(scheme, faults)
            attack = make_attack("scan", scheme.logical_pages, seed=SEED)
            return SimulationEngine(
                scheme,
                AttackDriver(attack),
                batch_size=16,
                soft_errors=injector,
                snapshots=plan,
            )

        def measure(name, snapshots=None):
            return measure_attack_lifetime(
                name,
                "scan",
                scaled=SCALED,
                seed=SEED,
                batch_size=16,
                soft_errors=faults,
                snapshots=snapshots,
            )

        clean = measure(scheme_name)
        resumed = self._crash_and_resume(scheme_name, build, measure, tmp_path)
        assert resumed == clean

    def test_injector_mismatch_is_rejected(self, tmp_path):
        path = str(tmp_path / "cell.snap")
        plain = _attack_engine("twl", SnapshotPlan(path=path, resume=False))
        plain.drive(100)
        write_snapshot(path, plain.snapshot_state())
        faulted = measure_attack_lifetime  # resumed run *with* injector
        with pytest.raises(SnapshotError, match="mismatch"):
            faulted(
                "twl",
                "scan",
                scaled=SCALED,
                seed=SEED,
                batch_size=16,
                soft_errors=SoftErrorConfig(rate=2e-4),
                snapshots=SnapshotPlan(path=path, resume=True),
            )


class TestResumePolicy:
    def test_strict_resume_propagates_corruption(self, tmp_path):
        path = str(tmp_path / "cell.snap")
        with open(path, "wb") as handle:
            handle.write(b"garbage, not a snapshot")
        with pytest.raises(SnapshotError):
            measure_attack_lifetime(
                "nowl",
                "scan",
                scaled=SCALED,
                seed=SEED,
                snapshots=SnapshotPlan(path=path, resume=True, strict=True),
            )

    def test_lenient_resume_falls_back_to_fresh_run(self, tmp_path):
        clean = measure_attack_lifetime(
            "nowl", "scan", scaled=SCALED, seed=SEED, batch_size=16
        )
        path = str(tmp_path / "cell.snap")
        with open(path, "wb") as handle:
            handle.write(b"garbage, not a snapshot")
        result = measure_attack_lifetime(
            "nowl",
            "scan",
            scaled=SCALED,
            seed=SEED,
            batch_size=16,
            snapshots=SnapshotPlan(path=path, resume=True, strict=False),
        )
        assert result == clean

    def test_fastforward_rejects_snapshots(self, tmp_path):
        plan = SnapshotPlan(path=str(tmp_path / "cell.snap"), every=EVERY)
        with pytest.raises(ConfigError, match="fastforward"):
            measure_attack_lifetime(
                "nowl", "scan", scaled=SCALED, fastforward=True, snapshots=plan
            )

    def test_emit_without_plan_is_an_error(self):
        engine = _attack_engine("nowl", None)
        with pytest.raises(SimulationError, match="no snapshot plan"):
            engine.emit_snapshot()


class TestCellCheckpointing:
    """The executor face: fingerprint-named snapshots, spent on success."""

    def _cell(self, tmp_path, **extra):
        cell = attack_cell("sr", "scan", scaled=SCALED, seed=SEED)
        return dataclasses.replace(
            cell,
            batch_size=16,
            snapshot_every=EVERY,
            snapshot_dir=str(tmp_path / "snaps"),
            **extra,
        )

    def test_snapshot_path_requires_both_knobs(self, tmp_path):
        plain = attack_cell("sr", "scan", scaled=SCALED, seed=SEED)
        assert cell_snapshot_path(plain) is None
        assert cell_snapshot_path(
            dataclasses.replace(plain, snapshot_every=EVERY)
        ) is None
        armed = self._cell(tmp_path)
        path = cell_snapshot_path(armed)
        assert path is not None and path.endswith(".snap")
        # Knob changes must not orphan the snapshot (fingerprint-named).
        assert path == cell_snapshot_path(
            dataclasses.replace(armed, batch_size=1024, label="retry")
        )

    def test_checkpointed_cell_matches_plain_and_cleans_up(self, tmp_path):
        plain = run_cell(attack_cell("sr", "scan", scaled=SCALED, seed=SEED))
        cell = self._cell(tmp_path)
        assert run_cell(cell) == plain
        # The run completed: its snapshot is spent, the directory clean.
        assert os.listdir(cell.snapshot_dir) == []

    def test_cell_resumes_from_crashed_state(self, tmp_path):
        cell = self._cell(tmp_path)
        plain = run_cell(attack_cell("sr", "scan", scaled=SCALED, seed=SEED))
        # Plant the crashed run's snapshot exactly where the cell looks.
        os.makedirs(cell.snapshot_dir, exist_ok=True)
        path = cell_snapshot_path(cell)
        dying = _attack_engine(
            "sr", SnapshotPlan(path=path, every=EVERY, resume=False)
        )
        dying.drive(EVERY + 200)
        assert read_snapshot(path)[1]["demand_served"] == EVERY
        assert run_cell(cell) == plain
        assert os.listdir(cell.snapshot_dir) == []

    def test_negative_cadence_rejected(self):
        with pytest.raises(ConfigError, match="non-negative"):
            dataclasses.replace(
                attack_cell("sr", "scan", scaled=SCALED), snapshot_every=-1
            )

    def test_stream_cell_checkpointing(self, tmp_path):
        base = stream_cell(
            "startgap",
            stream="ftl",
            scaled=SCALED,
            seed=SEED,
            chunk_size=CHUNK,
        )
        plain = run_cell(base)
        cell = dataclasses.replace(
            base,
            snapshot_every=EVERY,
            snapshot_dir=str(tmp_path / "snaps"),
        )
        assert run_cell(cell) == plain
        assert os.listdir(cell.snapshot_dir) == []
