"""Tests for the counting Bloom filter substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bloom.counting_bloom import CountingBloomFilter
from repro.bloom.hashes import HashFamily
from repro.errors import ConfigError


class TestHashFamily:
    def test_indices_in_range(self):
        family = HashFamily(3, 1024, seed=1)
        for key in range(200):
            for index in family.indices(key):
                assert 0 <= index < 1024

    def test_deterministic(self):
        a = HashFamily(3, 256, seed=9)
        b = HashFamily(3, 256, seed=9)
        assert a.indices(42) == b.indices(42)

    def test_seeds_differ(self):
        a = HashFamily(3, 256, seed=1)
        b = HashFamily(3, 256, seed=2)
        assert any(a.indices(k) != b.indices(k) for k in range(16))

    def test_spread(self):
        family = HashFamily(1, 256, seed=5)
        positions = {family.indices(k)[0] for k in range(256)}
        # Random balls-in-bins would occupy ~162 of 256 bins; the
        # multiply-shift family on sequential keys is somewhat clustered
        # but must not collapse onto a handful of positions.
        assert len(positions) > 90

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            HashFamily(2, 100)

    def test_rejects_zero_hashes(self):
        with pytest.raises(ConfigError):
            HashFamily(0, 256)

    def test_rejects_negative_key(self):
        with pytest.raises(ValueError):
            HashFamily(2, 256).indices(-1)


class TestCountingBloom:
    def test_estimate_upper_bounds_count(self):
        bloom = CountingBloomFilter(1024, 3, seed=3)
        for _ in range(7):
            bloom.insert(42)
        assert bloom.estimate(42) >= 7

    def test_absent_key_low_estimate(self):
        bloom = CountingBloomFilter(4096, 3, seed=3)
        for key in range(50):
            bloom.insert(key)
        assert bloom.estimate(99_999) <= 2

    def test_contains_threshold(self):
        bloom = CountingBloomFilter(1024, 3, seed=1)
        for _ in range(4):
            bloom.insert(7)
        assert bloom.contains(7, threshold=4)
        assert not bloom.contains(12345, threshold=4)

    def test_clear(self):
        bloom = CountingBloomFilter(256, 2, seed=1)
        bloom.insert(1)
        bloom.clear()
        assert bloom.estimate(1) == 0
        assert bloom.inserted == 0

    def test_counter_saturation(self):
        bloom = CountingBloomFilter(64, 1, counter_bits=2, seed=1)
        for _ in range(100):
            bloom.insert(5)
        assert bloom.estimate(5) == 3

    def test_load_factor(self):
        bloom = CountingBloomFilter(256, 2, seed=1)
        assert bloom.load_factor() == 0.0
        bloom.insert(1)
        assert bloom.load_factor() > 0.0

    def test_storage_bits(self):
        assert CountingBloomFilter(1024, 3, counter_bits=8).storage_bits == 8192

    def test_rejects_bad_counter_width(self):
        with pytest.raises(ConfigError):
            CountingBloomFilter(256, 2, counter_bits=0)

    def test_contains_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(256, 2).contains(1, threshold=0)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_count_min_property(self, keys):
        """Estimate never undercounts any inserted key."""
        bloom = CountingBloomFilter(512, 3, counter_bits=16, seed=11)
        for key in keys:
            bloom.insert(key)
        for key in set(keys):
            assert bloom.estimate(key) >= keys.count(key)
