"""Tests for the response-time swap detector."""

import pytest

from repro.attacks.detector import SwapDetector
from repro.errors import ConfigError


class TestSwapDetector:
    def test_learns_baseline_then_detects(self):
        detector = SwapDetector(threshold_factor=1.5, warmup=4)
        for _ in range(4):
            assert not detector.observe(2000.0)
        assert not detector.observe(2000.0)
        assert detector.observe(6000.0)
        assert detector.detections == 1

    def test_baseline_tracks_minimum(self):
        detector = SwapDetector(warmup=2)
        detector.observe(5000.0)
        detector.observe(5000.0)
        # A faster plain response lowers the baseline instead of firing.
        assert not detector.observe(2000.0)
        assert detector.observe(4000.0)

    def test_threshold_factor_respected(self):
        detector = SwapDetector(threshold_factor=3.0, warmup=1)
        detector.observe(1000.0)
        assert not detector.observe(2500.0)
        assert detector.observe(3500.0)

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigError):
            SwapDetector(threshold_factor=1.0)

    def test_rejects_bad_warmup(self):
        with pytest.raises(ConfigError):
            SwapDetector(warmup=0)

    def test_rejects_nonpositive_latency(self):
        detector = SwapDetector()
        with pytest.raises(ValueError):
            detector.observe(0.0)
