"""Tests for the swap judge."""

from repro.core.swap_judge import (
    PLAN_DIRECT,
    PLAN_SWAP_THEN_WRITE,
    SwapJudge,
    WritePlan,
)


class TestSwapJudge:
    def test_direct_when_chosen_matches(self):
        judge = SwapJudge()
        plan = judge.judge(addr_write=5, addr_choose=5, addr_not_choose=9)
        assert plan.kind == PLAN_DIRECT
        assert plan.writes == (5,)
        assert plan.physical_writes == 1
        assert not plan.remap_swapped

    def test_swap_then_write_is_two_writes(self):
        judge = SwapJudge()
        plan = judge.judge(addr_write=5, addr_choose=9, addr_not_choose=5)
        assert plan.kind == PLAN_SWAP_THEN_WRITE
        # Migration target first (receives the partner's old data), then
        # the chosen frame (receives the incoming data).
        assert plan.writes == (5, 9)
        assert plan.physical_writes == 2
        assert plan.remap_swapped

    def test_counters_and_fraction(self):
        judge = SwapJudge()
        judge.judge(1, 1, 2)
        judge.judge(1, 2, 1)
        judge.judge(1, 2, 1)
        assert judge.direct == 1
        assert judge.swapped == 2
        assert judge.swap_fraction() == 2 / 3

    def test_fraction_zero_initially(self):
        assert SwapJudge().swap_fraction() == 0.0

    def test_plan_is_frozen(self):
        plan = WritePlan(PLAN_DIRECT, (1,), remap_swapped=False)
        try:
            plan.kind = "other"
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated
