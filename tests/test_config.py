"""Tests for repro.config."""

import pytest

from repro.config import (
    BWLConfig,
    PCMConfig,
    ScaledArrayConfig,
    SecurityRefreshConfig,
    StartGapConfig,
    SimConfig,
    TimingConfig,
    TWLConfig,
    WRLConfig,
    PAPER_PCM,
    PAIRING_ADJACENT,
)
from repro.errors import ConfigError


class TestPCMConfig:
    def test_paper_page_count(self):
        # 32 GiB / 4 KiB = 8M pages.
        assert PAPER_PCM.n_pages == 8 * 1024 * 1024

    def test_lines_per_page(self):
        assert PAPER_PCM.lines_per_page == 32

    def test_endurance_sigma(self):
        assert PAPER_PCM.endurance_sigma == pytest.approx(1.1e7)

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ConfigError):
            PCMConfig(page_bytes=3000)

    def test_rejects_line_larger_than_page(self):
        with pytest.raises(ConfigError):
            PCMConfig(page_bytes=4096, line_bytes=8192)

    def test_rejects_fractional_pages(self):
        with pytest.raises(ConfigError):
            PCMConfig(capacity_bytes=4096 + 1)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigError):
            PCMConfig(endurance_sigma_fraction=1.5)


class TestScaledArrayConfig:
    def test_to_pcm_config(self):
        scaled = ScaledArrayConfig(n_pages=512, endurance_mean=1000.0)
        pcm = scaled.to_pcm_config()
        assert pcm.n_pages == 512
        assert pcm.endurance_mean == 1000.0

    def test_rejects_tiny_endurance(self):
        with pytest.raises(ConfigError):
            ScaledArrayConfig(endurance_mean=0.5)

    def test_rejects_one_page(self):
        with pytest.raises(ConfigError):
            ScaledArrayConfig(n_pages=1)


class TestTimingConfig:
    def test_write_cycles_is_set_latency(self):
        assert TimingConfig().write_cycles == 2000

    def test_cycles_to_seconds(self):
        timing = TimingConfig()
        assert timing.cycles_to_seconds(2e9) == pytest.approx(1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            TimingConfig(read_cycles=-1)


class TestTWLConfig:
    def test_paper_defaults(self):
        config = TWLConfig()
        assert config.toss_up_interval == 32
        assert config.inter_pair_swap_interval == 128
        assert config.rng_bits == 8
        assert config.write_counter_bits == 7

    def test_interval_must_fit_counter(self):
        with pytest.raises(ConfigError):
            TWLConfig(toss_up_interval=128, write_counter_bits=7)

    def test_with_pairing(self):
        config = TWLConfig().with_pairing(PAIRING_ADJACENT)
        assert config.pairing == PAIRING_ADJACENT
        assert config.toss_up_interval == 32

    def test_with_interval(self):
        config = TWLConfig().with_interval(8)
        assert config.toss_up_interval == 8

    def test_rejects_unknown_pairing(self):
        with pytest.raises(ConfigError):
            TWLConfig(pairing="nonsense")


class TestSchemeConfigs:
    def test_sr_rejects_non_power_of_two_region(self):
        with pytest.raises(ConfigError):
            SecurityRefreshConfig(region_pages=100)

    def test_sr_accepts_power_of_two_region(self):
        assert SecurityRefreshConfig(region_pages=64).region_pages == 64

    def test_startgap_rejects_zero_interval(self):
        with pytest.raises(ConfigError):
            StartGapConfig(gap_move_interval=0)

    def test_wrl_rejects_zero_prediction(self):
        with pytest.raises(ConfigError):
            WRLConfig(prediction_writes_per_page=0)

    def test_bwl_rejects_non_power_of_two_bloom(self):
        with pytest.raises(ConfigError):
            BWLConfig(bloom_bits=1000)

    def test_bwl_rejects_bad_hot_fraction(self):
        with pytest.raises(ConfigError):
            BWLConfig(hot_fraction=0.9)

    def test_bwl_rejects_bad_cold_threshold(self):
        with pytest.raises(ConfigError):
            BWLConfig(cold_threshold=0)

    def test_sim_config_rejects_bad_max_writes(self):
        with pytest.raises(ConfigError):
            SimConfig(max_writes=0)
