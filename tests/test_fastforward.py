"""Tests for fast-forward lifetime estimation."""

import pytest

from repro.attacks.random_attack import RandomWriteAttack
from repro.attacks.scan import ScanWriteAttack
from repro.config import ScaledArrayConfig
from repro.errors import SimulationError
from repro.pcm.array import PCMArray
from repro.sim.drivers import AttackDriver, TraceDriver
from repro.sim.fastforward import FastForwardConfig, fast_forward_to_failure
from repro.sim.lifetime import run_to_failure
from repro.sim.runner import build_array
from repro.traces.trace import Trace
from repro.wearlevel.nowl import NoWearLeveling
from repro.wearlevel.security_refresh import SecurityRefresh


def _ff_config():
    return FastForwardConfig(warmup_demand=5_000, window_demand=5_000)


class TestConfigValidation:
    def test_rejects_bad_safety(self):
        with pytest.raises(ValueError):
            FastForwardConfig(jump_safety=1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FastForwardConfig(window_demand=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            FastForwardConfig(warmup_demand=-1)


class TestAgainstExact:
    def _pair(self, scheme_cls, attack_cls, n=64, endurance=200_000):
        results = []
        for estimator in ("exact", "ff"):
            array = PCMArray.uniform(n, endurance)
            scheme = scheme_cls(array) if scheme_cls is NoWearLeveling else scheme_cls(
                array, seed=3
            )
            driver = AttackDriver(attack_cls(n, seed=3) if attack_cls is RandomWriteAttack
                                  else attack_cls(n))
            if estimator == "exact":
                results.append(run_to_failure(scheme, driver))
            else:
                results.append(
                    fast_forward_to_failure(scheme, driver, config=_ff_config())
                )
        return results

    def test_nowl_scan_matches_exact(self):
        exact, ff = self._pair(NoWearLeveling, ScanWriteAttack)
        assert ff.failed
        assert ff.estimation == "fast-forward"
        assert ff.demand_writes == pytest.approx(exact.demand_writes, rel=0.05)

    def test_nowl_random_matches_exact(self):
        # Stochastic streams leave Poisson noise in the measured rates,
        # so fast-forward is approximate (and conservative) here; the
        # deterministic-stream tests above hold the tight bound.
        exact, ff = self._pair(NoWearLeveling, RandomWriteAttack)
        assert ff.demand_writes == pytest.approx(exact.demand_writes, rel=0.2)
        assert ff.demand_writes <= exact.demand_writes * 1.05

    def test_sr_scan_matches_exact(self):
        exact, ff = self._pair(SecurityRefresh, ScanWriteAttack)
        assert ff.demand_writes == pytest.approx(exact.demand_writes, rel=0.1)

    def test_ff_is_faster_in_exact_writes(self):
        # The fast-forward run must simulate far fewer exact writes than
        # the lifetime it reports (that's the point); the attack only
        # counts exactly-driven writes because jumps bypass the driver.
        array = PCMArray.uniform(64, 500_000)
        scheme = NoWearLeveling(array)
        attack = ScanWriteAttack(64)
        result = fast_forward_to_failure(
            scheme, AttackDriver(attack), config=_ff_config()
        )
        assert result.failed
        assert attack.writes_emitted < result.demand_writes / 3


class TestBulkPath:
    def test_trace_driver_supported(self):
        array = PCMArray.uniform(32, 300_000)
        scheme = NoWearLeveling(array)
        driver = TraceDriver(Trace.writes_only(list(range(32))), 32)
        result = fast_forward_to_failure(scheme, driver, config=_ff_config())
        assert result.failed
        expected = 32 * 300_000
        assert result.demand_writes == pytest.approx(expected, rel=0.05)

    def test_rejects_failed_array(self):
        array = PCMArray.uniform(2, 1)
        array.write(0)
        scheme = NoWearLeveling(array)
        with pytest.raises(SimulationError):
            fast_forward_to_failure(
                scheme, AttackDriver(ScanWriteAttack(2)), config=_ff_config()
            )
