"""Tests for the latency and performance models."""

import pytest

from repro.config import TimingConfig, TWLConfig
from repro.errors import ConfigError
from repro.sim.metrics import SchemeOverheads
from repro.timing.latency import control_path_cycles, request_latency_cycles
from repro.timing.perf_model import (
    PerfModelConfig,
    normalized_execution_time,
    swap_exposure,
)
from repro.traces.parsec import get_profile


def _overheads(scheme, swap_ratio):
    return SchemeOverheads(
        scheme=scheme,
        workload="test",
        demand_writes=1000,
        swap_write_ratio=swap_ratio,
        swap_event_ratio=swap_ratio / 2,
        extra_stats={},
    )


class TestControlPath:
    def test_nowl_free(self):
        assert control_path_cycles("nowl") == 0.0

    def test_bwl_heaviest(self):
        # "two bloom filters and a cold-hot list are accessed during
        # every write" — BWL's control path dominates all schemes.
        schemes = ("startgap", "sr", "wrl", "twl")
        bwl = control_path_cycles("bwl")
        assert all(control_path_cycles(s) < bwl for s in schemes)

    def test_twl_amortized_by_interval(self):
        fast = control_path_cycles("twl", twl_config=TWLConfig(toss_up_interval=1))
        slow = control_path_cycles("twl", twl_config=TWLConfig(toss_up_interval=64))
        assert slow < fast

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            control_path_cycles("mystery")

    def test_request_latency_components(self):
        timing = TimingConfig()
        plain = request_latency_cycles(True, 0, "nowl", timing)
        assert plain == timing.write_cycles
        blocked = request_latency_cycles(True, 2, "nowl", timing)
        assert blocked == timing.write_cycles * 3

    def test_read_latency(self):
        timing = TimingConfig()
        assert request_latency_cycles(False, 0, "nowl", timing) == timing.read_cycles

    def test_rejects_negative_extra(self):
        with pytest.raises(ValueError):
            request_latency_cycles(True, -1, "nowl")


class TestPerfModel:
    def test_exposure_by_scheme(self):
        config = PerfModelConfig()
        assert swap_exposure("nowl", config) == 0.0
        assert swap_exposure("sr", config) == 1.0
        assert swap_exposure("twl", config) == 0.5

    def test_normalized_time_above_one(self):
        profile = get_profile("vips")
        value = normalized_execution_time("twl", _overheads("twl", 0.03), profile)
        assert 1.0 < value < 1.1

    def test_bwl_slower_than_twl(self):
        profile = get_profile("vips")
        bwl = normalized_execution_time("bwl", _overheads("bwl", 0.05), profile)
        twl = normalized_execution_time("twl", _overheads("twl", 0.03), profile)
        assert bwl > twl

    def test_memory_boundedness_scales_overhead(self):
        overheads = _overheads("twl", 0.03)
        vips = normalized_execution_time("twl", overheads, get_profile("vips"))
        stream = normalized_execution_time(
            "twl", overheads, get_profile("streamcluster")
        )
        assert vips > stream

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PerfModelConfig(blocking_swap_exposure=2.0)

    def test_unknown_scheme_exposure(self):
        with pytest.raises(ConfigError):
            swap_exposure("mystery", PerfModelConfig())
