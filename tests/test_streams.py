"""The streaming workload pipeline: TraceStream protocol + formats.

Covers the chunked ``.twt`` on-disk format (round-trip, append,
every truncation/corruption ``TraceError`` path), the ``trace_info``
metadata peek across formats, the text and block-trace streaming
readers, the FTL dynamic workload generator (determinism, chunk-size
invariance, rewind), the stream registry, and ``StreamDriver``
(short batches at chunk boundaries, loop counting, error paths).

Scales are deliberately tiny — the bit-identity matrix at engine scale
lives in ``tests/test_engine_identity.py``.
"""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError, TraceError
from repro.pcm.array import PCMArray
from repro.sim.drivers import StreamDriver, TraceDriver
from repro.sim.runner import measure_stream_lifetime
from repro.traces import (
    OP_READ,
    OP_WRITE,
    ChunkedFileStream,
    ChunkedTraceWriter,
    FTLConfig,
    FTLWorkloadStream,
    MaterializedStream,
    Trace,
    make_stream,
    open_trace_stream,
    save_chunked_trace,
    save_text_trace,
    save_trace,
    stream_names,
    trace_info,
)
from repro.traces.chunked import CHUNKED_MAGIC, _CHUNK_HEADER
from repro.wearlevel.registry import make_scheme


def _mixed_trace(n_requests: int = 200, n_pages: int = 64, seed: int = 5) -> Trace:
    rng = np.random.default_rng(seed)
    ops = np.where(rng.random(n_requests) < 0.75, OP_WRITE, OP_READ).astype(np.uint8)
    pages = rng.integers(0, n_pages, size=n_requests)
    return Trace(ops, pages, name="mixed", write_bandwidth_mbps=120.0)


def _gather(stream, max_chunks: int = 10_000):
    """Concatenate a stream's chunks into one (ops, pages) pair."""
    ops_parts, pages_parts = [], []
    for _ in range(max_chunks):
        chunk = stream.next_chunk()
        if chunk is None:
            break
        ops_parts.append(chunk[0])
        pages_parts.append(chunk[1])
    return np.concatenate(ops_parts), np.concatenate(pages_parts)


class TestMaterializedStream:
    def test_chunks_concatenate_to_the_trace(self):
        trace = _mixed_trace()
        stream = trace.stream(chunk_size=7)
        ops, pages = _gather(stream)
        assert np.array_equal(ops, trace.ops)
        assert np.array_equal(pages, trace.pages)

    def test_chunk_sizes_do_not_change_the_sequence(self):
        trace = _mixed_trace()
        for chunk_size in (1, 3, 199, 200, 201, 10_000):
            ops, pages = _gather(trace.stream(chunk_size))
            assert np.array_equal(pages, trace.pages), chunk_size

    def test_rewind_restarts(self):
        stream = _mixed_trace().stream(chunk_size=64)
        first = stream.next_chunk()
        stream.rewind()
        again = stream.next_chunk()
        assert np.array_equal(first[1], again[1])

    def test_exhaustion_returns_none(self):
        stream = _mixed_trace(n_requests=5).stream(chunk_size=64)
        assert stream.next_chunk() is not None
        assert stream.next_chunk() is None

    def test_materialize_round_trip(self):
        trace = _mixed_trace()
        back = trace.stream(chunk_size=13).materialize()
        assert np.array_equal(back.ops, trace.ops)
        assert np.array_equal(back.pages, trace.pages)
        assert back.name == trace.name
        assert back.write_bandwidth_mbps == trace.write_bandwidth_mbps

    def test_materialize_truncates_at_max_requests(self):
        trace = _mixed_trace()
        short = trace.stream(chunk_size=16).materialize(max_requests=50)
        assert short.n_requests == 50
        assert np.array_equal(short.pages, trace.pages[:50])

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(TraceError, match="chunk size"):
            MaterializedStream(_mixed_trace(), chunk_size=0)
        with pytest.raises(TraceError, match="chunk size"):
            _mixed_trace().stream(chunk_size=-3)

    def test_n_requests_known(self):
        assert _mixed_trace(n_requests=77).stream(8).n_requests == 77


class TestChunkedFormat:
    def test_round_trip_identity(self, tmp_path):
        trace = _mixed_trace()
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(trace, path, chunk_size=33)
        with ChunkedFileStream(path) as stream:
            assert stream.name == "mixed"
            assert stream.write_bandwidth_mbps == 120.0
            assert stream.n_requests == trace.n_requests
            ops, pages = _gather(stream)
        assert np.array_equal(ops, trace.ops)
        assert np.array_equal(pages, trace.pages)

    def test_chunks_come_back_as_written(self, tmp_path):
        trace = _mixed_trace(n_requests=100)
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(trace, path, chunk_size=33)
        with ChunkedFileStream(path) as stream:
            sizes = [chunk[0].size for chunk in stream.chunks()]
        assert sizes == [33, 33, 33, 1]

    def test_rewind_loops_the_file(self, tmp_path):
        trace = _mixed_trace(n_requests=10)
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(trace, path)
        with ChunkedFileStream(path) as stream:
            first = stream.next_chunk()
            assert stream.next_chunk() is None
            stream.rewind()
            again = stream.next_chunk()
        assert np.array_equal(first[1], again[1])

    def test_append_extends_without_rewriting(self, tmp_path):
        trace = _mixed_trace(n_requests=40)
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(trace, path, chunk_size=40)
        with ChunkedTraceWriter(path, append=True) as writer:
            assert writer.name == "mixed"
            writer.write_chunk(trace.ops, trace.pages)
        with ChunkedFileStream(path) as stream:
            assert stream.n_requests == 80
            ops, pages = _gather(stream)
        assert np.array_equal(pages, np.concatenate([trace.pages, trace.pages]))

    def test_append_rejects_respecified_header(self, tmp_path):
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(_mixed_trace(), path)
        with pytest.raises(TraceError, match="append mode"):
            ChunkedTraceWriter(path, name="other", append=True)

    def test_append_to_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            ChunkedTraceWriter(str(tmp_path / "absent.twt"), append=True)

    def test_closed_writer_rejects_chunks(self, tmp_path):
        writer = ChunkedTraceWriter(str(tmp_path / "trace.twt"))
        writer.write_chunk(
            np.array([OP_WRITE], dtype=np.uint8), np.array([1], dtype=np.int64)
        )
        writer.close()
        with pytest.raises(TraceError, match="closed"):
            writer.write_chunk(
                np.array([OP_WRITE], dtype=np.uint8), np.array([1], dtype=np.int64)
            )

    @pytest.mark.parametrize(
        "ops, pages, match",
        [
            (np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=np.int64), "at least one"),
            (np.array([OP_WRITE], dtype=np.uint8), np.array([1, 2]), "mismatch"),
            (np.array([7], dtype=np.uint8), np.array([1]), "op codes"),
            (np.array([OP_WRITE], dtype=np.uint8), np.array([-1]), "negative"),
        ],
    )
    def test_writer_validates_chunks(self, tmp_path, ops, pages, match):
        with ChunkedTraceWriter(str(tmp_path / "trace.twt")) as writer:
            with pytest.raises(TraceError, match=match):
                writer.write_chunk(ops, pages)


class TestChunkedCorruption:
    """Every way a ``.twt`` file can be bad raises a structured TraceError."""

    def _twt(self, tmp_path, n_requests=64, chunk_size=16) -> str:
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(_mixed_trace(n_requests=n_requests), path, chunk_size)
        return path

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.twt")
        with open(path, "wb") as handle:
            handle.write(b"NOTATRCE" + b"\x00" * 32)
        with pytest.raises(TraceError, match="bad magic"):
            ChunkedFileStream(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            ChunkedFileStream(str(tmp_path / "absent.twt"))

    def test_truncated_header(self, tmp_path):
        path = str(tmp_path / "bad.twt")
        with open(path, "wb") as handle:
            handle.write(CHUNKED_MAGIC + b"\xff\x00")
        with pytest.raises(TraceError, match="header length cut short"):
            ChunkedFileStream(path)

    def test_malformed_header_json(self, tmp_path):
        path = str(tmp_path / "bad.twt")
        blob = b"not json"
        with open(path, "wb") as handle:
            handle.write(CHUNKED_MAGIC + struct.pack("<I", len(blob)) + blob)
        with pytest.raises(TraceError, match="malformed chunked trace header"):
            ChunkedFileStream(path)

    def test_unsupported_version(self, tmp_path):
        path = str(tmp_path / "bad.twt")
        blob = b'{"version": 99}'
        with open(path, "wb") as handle:
            handle.write(CHUNKED_MAGIC + struct.pack("<I", len(blob)) + blob)
        with pytest.raises(TraceError, match="unsupported chunked trace version"):
            ChunkedFileStream(path)

    def test_truncated_final_chunk_header(self, tmp_path):
        path = self._twt(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 1)
        # The earlier complete chunks still stream; the cut-short record
        # is diagnosed with its chunk index.
        with ChunkedFileStream(path) as stream:
            with pytest.raises(TraceError, match="chunk 3 .*cut short"):
                _gather(stream, max_chunks=100)

    def test_truncated_payload(self, tmp_path):
        path = self._twt(tmp_path, n_requests=16, chunk_size=16)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 4)
        with ChunkedFileStream(path) as stream:
            with pytest.raises(TraceError, match="payload cut short"):
                stream.next_chunk()

    def test_truncation_detected_by_metadata_scan(self, tmp_path):
        path = self._twt(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 4)
        with ChunkedFileStream(path) as stream:
            with pytest.raises(TraceError, match="truncated"):
                stream.n_requests

    def test_crc_mismatch(self, tmp_path):
        path = self._twt(tmp_path, n_requests=16, chunk_size=16)
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        with ChunkedFileStream(path) as stream:
            with pytest.raises(TraceError, match="CRC mismatch"):
                stream.next_chunk()

    def test_absurd_chunk_header_rejected(self, tmp_path):
        path = self._twt(tmp_path, n_requests=16, chunk_size=16)
        data = open(path, "rb").read()
        # Locate the single chunk record: it follows magic+hdr_len+header.
        header_len = struct.unpack("<I", data[8:12])[0]
        offset = 12 + header_len
        bad = _CHUNK_HEADER.pack(1 << 40, 16, 0)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            handle.write(bad)
        with ChunkedFileStream(path) as stream:
            with pytest.raises(TraceError, match="malformed"):
                stream.next_chunk()

    def test_closed_stream_raises(self, tmp_path):
        path = self._twt(tmp_path)
        stream = ChunkedFileStream(path)
        stream.close()
        with pytest.raises(TraceError, match="closed"):
            stream.next_chunk()
        with pytest.raises(TraceError, match="closed"):
            stream.rewind()


class TestTraceInfo:
    def test_npz_peek(self, tmp_path):
        trace = _mixed_trace(n_requests=123)
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        info = trace_info(path)
        assert info.format == "npz"
        assert info.name == "mixed"
        assert info.write_bandwidth_mbps == 120.0
        assert info.n_requests == 123

    def test_chunked_peek(self, tmp_path):
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(_mixed_trace(n_requests=90), path, chunk_size=16)
        info = trace_info(path)
        assert info.format == "chunked"
        assert info.name == "mixed"
        assert info.n_requests == 90

    def test_text_peek_reports_format_only(self, tmp_path):
        path = str(tmp_path / "workload.txt")
        save_text_trace(_mixed_trace(), path)
        info = trace_info(path)
        assert info.format == "text"
        assert info.name == "workload"
        assert info.n_requests is None

    def test_csv_classified_by_extension(self, tmp_path):
        path = str(tmp_path / "msr.csv")
        with open(path, "w") as handle:
            handle.write("128166372003061629,hm,1,Write,0,4096,1339\n")
        assert trace_info(path).format == "csv"

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            trace_info(str(tmp_path / "absent.npz"))


class TestOpenTraceStream:
    """One front door; format sniffed by magic bytes, not extension."""

    def test_every_format_streams_the_same_writes(self, tmp_path):
        trace = _mixed_trace(n_requests=150, n_pages=32)
        paths = {
            "npz": str(tmp_path / "t.npz"),
            "twt": str(tmp_path / "t.twt"),
            "text": str(tmp_path / "t.trace"),
        }
        save_trace(trace, paths["npz"])
        save_chunked_trace(trace, paths["twt"], chunk_size=40)
        save_text_trace(trace, paths["text"])
        expected = trace.write_pages()
        for label, path in paths.items():
            with open_trace_stream(path, chunk_size=17) as stream:
                ops, pages = _gather(stream)
            assert np.array_equal(pages[ops == OP_WRITE], expected), label

    def test_extension_is_irrelevant_for_binary_formats(self, tmp_path):
        trace = _mixed_trace()
        path = str(tmp_path / "mislabeled.txt")
        save_chunked_trace(trace, path)
        with open_trace_stream(path) as stream:
            assert isinstance(stream, ChunkedFileStream)


class TestTextAndBlockStreams:
    def test_text_stream_chunked_identity(self, tmp_path):
        trace = _mixed_trace(n_requests=120)
        path = str(tmp_path / "t.trace")
        save_text_trace(trace, path)
        with open_trace_stream(path, chunk_size=7) as stream:
            ops, pages = _gather(stream)
        assert np.array_equal(ops, trace.ops)
        assert np.array_equal(pages, trace.pages)

    def test_text_stream_rewind(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_text_trace(_mixed_trace(n_requests=10), path)
        with open_trace_stream(path, chunk_size=4) as stream:
            first = stream.next_chunk()
            stream.rewind()
            again = stream.next_chunk()
        assert np.array_equal(first[1], again[1])

    def test_text_parse_error_names_line(self, tmp_path):
        path = str(tmp_path / "bad.trace")
        with open(path, "w") as handle:
            handle.write("W 0x1000\nX 0x2000\n")
        with open_trace_stream(path, chunk_size=8) as stream:
            with pytest.raises(TraceError, match=r"bad\.trace:2"):
                stream.next_chunk()

    def test_block_trace_expands_spans_to_pages(self, tmp_path):
        path = str(tmp_path / "msr.csv")
        with open(path, "w") as handle:
            handle.write("timestamp,hostname,disknumber,type,offset,size,rt\n")
            handle.write("1,hm,0,Write,0,8192,9\n")      # pages 0,1 at 4 KiB
            handle.write("2,hm,0,Read,4096,4096,9\n")    # page 1
            handle.write("3,hm,0,Write,12288,1,9\n")     # page 3
        with open_trace_stream(path) as stream:
            ops, pages = _gather(stream)
        assert pages.tolist() == [0, 1, 1, 3]
        assert ops.tolist() == [OP_WRITE, OP_WRITE, OP_READ, OP_WRITE]

    def test_block_trace_record_spans_chunk_boundary(self, tmp_path):
        path = str(tmp_path / "msr.csv")
        with open(path, "w") as handle:
            handle.write("1,hm,0,Write,0,16384,9\n")  # 4 pages
        with open_trace_stream(path, chunk_size=3) as stream:
            sizes = [chunk[0].size for chunk in stream.chunks()]
        assert sizes == [3, 1]

    def test_block_trace_bad_type_errors(self, tmp_path):
        path = str(tmp_path / "msr.csv")
        with open(path, "w") as handle:
            handle.write("1,hm,0,Write,0,4096,9\n")
            handle.write("2,hm,0,Wrote,0,4096,9\n")
        with open_trace_stream(path) as stream:
            with pytest.raises(TraceError, match=r"msr\.csv:2"):
                _gather(stream)

    def test_block_trace_bad_offset_errors(self, tmp_path):
        path = str(tmp_path / "msr.csv")
        with open(path, "w") as handle:
            handle.write("1,hm,0,Write,xyz,4096,9\n")
        with open_trace_stream(path) as stream:
            with pytest.raises(TraceError, match="bad offset/size"):
                stream.next_chunk()


class TestFTLWorkload:
    def test_deterministic_in_seed(self):
        a = _gather_n(FTLWorkloadStream(64, seed=9, chunk_size=100), 300)
        b = _gather_n(FTLWorkloadStream(64, seed=9, chunk_size=100), 300)
        c = _gather_n(FTLWorkloadStream(64, seed=10, chunk_size=100), 300)
        assert np.array_equal(a[1], b[1])
        assert not np.array_equal(a[1], c[1])

    @pytest.mark.parametrize("chunk_size", [1, 13, 99, 100, 101, 1000])
    def test_chunk_size_invariance(self, chunk_size):
        """The request sequence is independent of chunk granularity."""
        reference = _gather_n(FTLWorkloadStream(64, seed=3, chunk_size=100), 400)
        other = _gather_n(FTLWorkloadStream(64, seed=3, chunk_size=chunk_size), 400)
        assert np.array_equal(reference[0], other[0])
        assert np.array_equal(reference[1], other[1])

    def test_rewind_restarts_the_sequence(self):
        stream = FTLWorkloadStream(64, seed=3, chunk_size=50)
        first = stream.next_chunk()
        stream.next_chunk()
        stream.rewind()
        again = stream.next_chunk()
        assert np.array_equal(first[1], again[1])

    def test_endless_and_in_bounds(self):
        stream = FTLWorkloadStream(32, seed=1, chunk_size=256)
        assert stream.endless
        assert stream.n_requests is None
        ops, pages = stream.next_chunk()
        assert pages.min() >= 0 and pages.max() < 32
        assert set(np.unique(ops)) <= {OP_READ, OP_WRITE}

    def test_materialize_requires_cap(self):
        with pytest.raises(TraceError, match="endless"):
            FTLWorkloadStream(32, seed=1).materialize()

    def test_touches_hot_and_cold_regions(self):
        stream = FTLWorkloadStream(64, seed=2, chunk_size=4096)
        ops, pages = stream.next_chunk()
        writes = pages[ops == OP_WRITE]
        hot = np.isin(writes, stream._hot_set)
        assert hot.any() and (~hot).any()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FTLConfig(write_fraction=0.0).validate()
        with pytest.raises(ConfigError):
            FTLConfig(hot_fraction=1.0).validate()
        with pytest.raises(ConfigError):
            FTLConfig(hot_write_fraction=0.8, gc_write_fraction=0.3).validate()
        with pytest.raises(ConfigError):
            FTLWorkloadStream(1, seed=0)

    def test_registry(self):
        assert "ftl" in stream_names()
        stream = make_stream("ftl", 64, seed=4, chunk_size=128)
        assert isinstance(stream, FTLWorkloadStream)
        assert stream.chunk_size == 128
        with pytest.raises(ConfigError, match="unknown stream"):
            make_stream("nope", 64)


def _gather_n(stream, n_requests):
    """First ``n_requests`` of an endless stream as one (ops, pages)."""
    ops_parts, pages_parts = [], []
    gathered = 0
    while gathered < n_requests:
        ops, pages = stream.next_chunk()
        ops_parts.append(ops)
        pages_parts.append(pages)
        gathered += ops.size
    ops = np.concatenate(ops_parts)[:n_requests]
    pages = np.concatenate(pages_parts)[:n_requests]
    return ops, pages


class TestStreamDriver:
    def test_short_batches_at_chunk_boundaries(self):
        trace = Trace.writes_only(np.arange(10), name="seq")
        driver = StreamDriver(trace.stream(chunk_size=4), n_pages=16)
        sizes = [driver.next_batch(8).size for _ in range(4)]
        # Chunks of 4/4/2 writes: each batch serves only from the
        # buffered chunk, so an 8-request ask comes back short; the
        # engine loop tolerates any non-empty short batch.
        assert sizes == [4, 4, 2, 4]
        assert driver.loops_completed == 1

    def test_serves_the_looped_write_sequence(self):
        writes = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        trace = Trace.writes_only(writes, name="seq")
        driver = StreamDriver(trace.stream(chunk_size=2), n_pages=8)
        out = []
        while len(out) < 12:
            out.extend(driver.next_batch(64).tolist())
        reference = TraceDriver(trace, 8).next_batch(12).tolist()
        assert out[:12] == reference

    def test_reads_are_filtered_not_served(self):
        ops = np.array([OP_READ, OP_WRITE, OP_READ, OP_WRITE], dtype=np.uint8)
        pages = np.array([9, 1, 9, 2], dtype=np.int64)
        driver = StreamDriver(Trace(ops, pages, name="rw").stream(2), n_pages=4)
        assert driver.next_batch(4).tolist() == [1]
        assert driver.next_batch(4).tolist() == [2]

    def test_writeless_stream_rejected(self):
        ops = np.full(4, OP_READ, dtype=np.uint8)
        stream = Trace(ops, np.arange(4), name="reads").stream(2)
        driver = StreamDriver(stream, n_pages=8)
        with pytest.raises(SimulationError, match="contains no writes"):
            driver.next_batch(1)

    def test_out_of_bounds_write_rejected(self):
        trace = Trace.writes_only(np.array([1, 99]), name="oob")
        driver = StreamDriver(trace.stream(8), n_pages=8)
        with pytest.raises(SimulationError, match="touches page 99"):
            driver.next_batch(2)

    def test_requests_consumed_counts_reads(self):
        ops = np.array([OP_READ, OP_WRITE, OP_WRITE], dtype=np.uint8)
        driver = StreamDriver(Trace(ops, np.arange(3), name="rw").stream(8), 8)
        driver.next_batch(2)
        assert driver.requests_consumed == 3

    def test_drive_serial_matches_trace_driver(self):
        trace = _mixed_trace(n_requests=300, n_pages=32)
        array_a = PCMArray.uniform(32, 256.0)
        array_b = PCMArray.uniform(32, 256.0)
        scheme_a = make_scheme("nowl", array_a, seed=7)
        scheme_b = make_scheme("nowl", array_b, seed=7)
        StreamDriver(trace.stream(chunk_size=11), 32).drive(scheme_a, 2000)
        TraceDriver(trace, 32).drive(scheme_b, 2000)
        assert np.array_equal(array_a.write_counts(), array_b.write_counts())


class TestMeasureStreamLifetime:
    def test_runs_the_ftl_workload_to_failure(self):
        from repro.config import ScaledArrayConfig

        scaled = ScaledArrayConfig(n_pages=64, endurance_mean=256.0)
        result = measure_stream_lifetime(
            "nowl",
            lambda n_pages: make_stream("ftl", n_pages, seed=5, chunk_size=512),
            scaled=scaled,
            seed=5,
            batch_size=64,
        )
        assert result.failed
        assert result.workload == "ftl"
        assert result.demand_writes > 0


class TestSeekAndPosition:
    """``seek`` / ``snapshot_position`` / ``restore_position``: the
    stream half of sub-cell recovery (``docs/robustness.md``)."""

    def test_materialized_seek_edges(self):
        trace = _mixed_trace(n_requests=100)
        stream = trace.stream(chunk_size=30)  # chunks of 30/30/30/10
        stream.next_chunk()
        stream.next_chunk()
        stream.seek(0)
        ops, pages = _gather(stream)
        assert np.array_equal(pages, trace.pages)
        stream.seek(3)  # last chunk
        chunk = stream.next_chunk()
        assert np.array_equal(chunk[1], trace.pages[90:])
        stream.seek(4)  # exactly EOF: positioned, exhausted, legal
        assert stream.next_chunk() is None
        with pytest.raises(TraceError, match="cannot seek"):
            stream.seek(5)
        with pytest.raises(TraceError, match="non-negative"):
            stream.seek(-1)

    def test_chunked_file_seek(self, tmp_path):
        trace = _mixed_trace(n_requests=100)
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(trace, path, chunk_size=30)
        with ChunkedFileStream(path) as stream:
            stream.next_chunk()
            stream.seek(0)
            ops, pages = _gather(stream)
            assert np.array_equal(pages, trace.pages)
            stream.seek(3)  # last chunk (payload-skipping, no decode)
            assert np.array_equal(stream.next_chunk()[1], trace.pages[90:])
            stream.seek(4)  # exactly EOF
            assert stream.next_chunk() is None
            with pytest.raises(TraceError, match="exhausted"):
                stream.seek(5)
            with pytest.raises(TraceError, match="non-negative"):
                stream.seek(-1)

    def test_text_stream_seek_replays(self, tmp_path):
        trace = _mixed_trace(n_requests=90)
        path = str(tmp_path / "trace.txt")
        save_text_trace(trace, path)
        with open_trace_stream(path, chunk_size=40) as stream:
            stream.next_chunk()
            stream.seek(2)  # base-protocol rewind + replay
            tail = stream.next_chunk()
            assert np.array_equal(tail[1], trace.pages[80:])
            with pytest.raises(TraceError, match="exhausted at chunk"):
                stream.seek(10)

    def test_position_round_trip_is_generic(self, tmp_path):
        trace = _mixed_trace(n_requests=100)
        path = str(tmp_path / "trace.twt")
        save_chunked_trace(trace, path, chunk_size=30)
        with ChunkedFileStream(path) as stream:
            stream.next_chunk()
            stream.next_chunk()
            state = stream.snapshot_position(2)
            assert state == {"chunk_index": 2}
        with ChunkedFileStream(path) as fresh:
            fresh.restore_position(state)
            assert np.array_equal(fresh.next_chunk()[1], trace.pages[60:90])

    def test_ftl_seek_is_pure_in_seed_config_index(self):
        sought = FTLWorkloadStream(64, seed=3, chunk_size=50)
        sought.seek(5)
        replayed = FTLWorkloadStream(64, seed=3, chunk_size=50)
        for _ in range(5):
            replayed.next_chunk()
        for _ in range(3):
            a, b = sought.next_chunk(), replayed.next_chunk()
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])
        # A third consumer never perturbs the mapping: seek again after
        # arbitrary extra consumption, same chunks come back.
        sought.next_chunk()
        sought.seek(5)
        again = sought.next_chunk()
        fresh = FTLWorkloadStream(64, seed=3, chunk_size=50)
        fresh.seek(5)
        assert np.array_equal(again[1], fresh.next_chunk()[1])
        with pytest.raises(TraceError, match="non-negative"):
            fresh.seek(-2)

    def test_ftl_position_snapshot_restores_without_replay(self):
        stream = FTLWorkloadStream(64, seed=7, chunk_size=50)
        for _ in range(4):
            stream.next_chunk()
        state = stream.snapshot_position(4)
        expected = [stream.next_chunk() for _ in range(3)]
        fresh = FTLWorkloadStream(64, seed=7, chunk_size=50)
        fresh.restore_position(state)
        for want in expected:
            got = fresh.next_chunk()
            assert np.array_equal(want[0], got[0])
            assert np.array_equal(want[1], got[1])

    def test_stream_driver_snapshot_restore_mid_loop(self):
        trace = _mixed_trace(n_requests=60, n_pages=16)
        driver = StreamDriver(trace.stream(chunk_size=13), n_pages=16)
        for _ in range(3):
            driver.next_batch(7)
        state = driver.snapshot()
        expected = [driver.next_batch(7).copy() for _ in range(12)]
        fresh = StreamDriver(trace.stream(chunk_size=13), n_pages=16)
        fresh.restore(state)
        for want in expected:
            assert np.array_equal(fresh.next_batch(7), want)
        assert fresh.loops_completed == driver.loops_completed
        assert fresh.requests_consumed == driver.requests_consumed
