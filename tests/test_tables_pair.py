"""Tests for the strong-weak pair table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressError, TableError
from repro.tables.pair_table import PairTable


def _assert_involution(table: PairTable) -> None:
    for la in range(table.n_pages):
        assert table.partner(table.partner(la)) == la


class TestBuilders:
    def test_strong_weak_binds_extremes(self):
        endurance = np.array([10, 20, 30, 40, 50, 60])
        table = PairTable.strong_weak(endurance)
        assert table.partner(0) == 5  # weakest with strongest
        assert table.partner(1) == 4
        assert table.partner(2) == 3
        _assert_involution(table)

    def test_strong_weak_odd_count_self_pairs_median(self):
        endurance = np.array([10, 20, 30, 40, 50])
        table = PairTable.strong_weak(endurance)
        assert table.partner(2) == 2  # median self-paired
        _assert_involution(table)

    def test_adjacent(self):
        table = PairTable.adjacent(6)
        assert table.partner(0) == 1
        assert table.partner(4) == 5
        _assert_involution(table)

    def test_adjacent_odd(self):
        table = PairTable.adjacent(5)
        assert table.partner(4) == 4
        _assert_involution(table)

    def test_random_is_perfect_matching(self, rng):
        table = PairTable.random(64, rng)
        _assert_involution(table)
        self_paired = sum(1 for la in range(64) if table.partner(la) == la)
        assert self_paired == 0

    def test_rejects_non_involution(self):
        with pytest.raises(TableError):
            PairTable([1, 2, 0])

    def test_rejects_out_of_range_partner(self):
        with pytest.raises(TableError):
            PairTable([5, 0])


class TestPairsListing:
    def test_pairs_cover_all_pages(self):
        table = PairTable.adjacent(8)
        pairs = table.pairs()
        covered = {page for pair in pairs for page in pair}
        assert covered == set(range(8))
        assert len(pairs) == 4

    def test_self_pair_listed_once(self):
        table = PairTable.adjacent(3)
        assert (2, 2) in table.pairs()


class TestExchangeRoles:
    def test_same_pair_exchange_is_noop(self):
        table = PairTable.adjacent(4)
        table.exchange_roles(0, 1)
        assert table.partner(0) == 1

    def test_cross_pair_exchange(self):
        table = PairTable.adjacent(4)  # pairs (0,1) (2,3)
        table.exchange_roles(0, 2)
        # Frame under 0 went to 2 and vice versa; physical sets preserved
        # means 2 now pairs with 1 and 0 pairs with 3.
        assert table.partner(2) == 1
        assert table.partner(0) == 3
        _assert_involution(table)

    def test_exchange_with_self_paired(self):
        table = PairTable.adjacent(5)  # 4 is self-paired
        table.exchange_roles(0, 4)
        # Page 4 took 0's frame, so it inherits 0's partner (1); page 0
        # took the lone frame and becomes self-paired.
        assert table.partner(4) == 1
        assert table.partner(0) == 0
        _assert_involution(table)

    def test_identity_exchange(self):
        table = PairTable.adjacent(4)
        table.exchange_roles(2, 2)
        assert table.partner(2) == 3

    def test_out_of_range(self):
        table = PairTable.adjacent(4)
        with pytest.raises(AddressError):
            table.exchange_roles(0, 4)

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_involution_preserved_property(self, exchanges):
        table = PairTable.adjacent(16)
        for a, b in exchanges:
            table.exchange_roles(a, b)
        _assert_involution(table)

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_physical_pairs_preserved_property(self, exchanges):
        """Frame pair-sets stay invariant when SWPT tracks frame moves.

        Simulate the remapping table alongside: pairs of *frames*
        (computed through the mapping) must equal the initial frame
        pairing after any sequence of exchanges.
        """
        n = 16
        table = PairTable.adjacent(n)
        frame_of = list(range(n))
        initial_frame_pairs = {
            frozenset((frame_of[a], frame_of[table.partner(a)])) for a in range(n)
        }
        for a, b in exchanges:
            if a == b:
                continue
            frame_of[a], frame_of[b] = frame_of[b], frame_of[a]
            table.exchange_roles(a, b)
        current = {
            frozenset((frame_of[a], frame_of[table.partner(a)])) for a in range(n)
        }
        assert current == initial_frame_pairs
