"""Tests for Bloom-filter based wear leveling."""

import numpy as np
import pytest

from repro.config import BWLConfig
from repro.pcm.array import PCMArray
from repro.wearlevel.bwl import BloomWearLeveling


def _make(n_pages=32, endurance=None, **overrides):
    if endurance is None:
        array = PCMArray.uniform(n_pages, 10**6)
    else:
        array = PCMArray(np.asarray(endurance))
    defaults = dict(
        bloom_bits=1024,
        prediction_writes_per_page=2.0,
        running_multiplier=4.0,
        hot_fraction=0.25,
    )
    defaults.update(overrides)
    return array, BloomWearLeveling(array, config=BWLConfig(**defaults), seed=1)


class TestHotDetection:
    def test_hammered_page_becomes_hot(self):
        _, scheme = _make()
        for _ in range(20):
            scheme.write(5)
        assert 5 in scheme._hot_set

    def test_threshold_rises_when_detection_too_fast(self):
        _, scheme = _make(n_pages=32, hot_fraction=0.25)
        initial = scheme.hot_threshold
        # Hammer many pages so the hot list fills before min phase.
        for step in range(2000):
            scheme.write(step % 8)
        assert scheme.hot_threshold >= initial

    def test_cold_queue_collects_once_written_pages(self):
        _, scheme = _make()
        scheme.write(3)
        assert 3 in scheme._cold_set


class TestSwapBehaviour:
    def test_mapping_bijective_after_phases(self):
        array, scheme = _make()
        for step in range(3000):
            scheme.write(step % 24)
        scheme.remap.validate()

    def test_rotation_under_repeat(self):
        array, scheme = _make(n_pages=16)
        frames = set()
        for _ in range(3000):
            scheme.write(0)
            frames.add(scheme.translate(0))
        assert len(frames) >= 3  # remaining-life placement rotates the page

    def test_swap_writes_accounted(self):
        array, scheme = _make()
        for step in range(3000):
            scheme.write(step % 4)
        assert array.total_writes == scheme.demand_writes + scheme.swap_writes

    def test_idle_resident_guard(self):
        # A frame whose resident was never observed keeps it: hammering
        # some pages must leave never-written pages' frames untouched by
        # cold placement most of the time.
        endurance = [100] + [10**6] * 31  # frame 0 weakest => most worn ranking
        array, scheme = _make(endurance=endurance)
        # LA 0 starts on frame 0; never write it, hammer others.
        for step in range(4000):
            scheme.write(1 + step % 8)
        # Frame 0 should have taken at most a few migration writes.
        assert array.page_writes(0) <= 6

    def test_remaining_life_view(self):
        array, scheme = _make(n_pages=8)
        scheme.write(0)
        remaining = scheme.remaining_life()
        assert remaining.shape == (8,)
        assert remaining[scheme.translate(0)] < 10**6


class TestPhaseAccounting:
    def test_phase_counter_advances(self):
        _, scheme = _make()
        for step in range(5000):
            scheme.write(step % 8)
        assert scheme.swap_phases_completed >= 1

    def test_filters_cleared_after_swap(self):
        _, scheme = _make()
        for step in range(5000):
            scheme.write(step % 8)
        # Right after a swap the detection state restarts; eventually the
        # detection-writes counter must be below a full phase.
        assert scheme._detection_writes < scheme._max_phase_writes
