"""Integration tests for the paper's headline claims (small scale).

Each test exercises a qualitative result of the paper's evaluation at a
reduced array and asserts the *shape* — who wins, by roughly what factor
— rather than absolute numbers (EXPERIMENTS.md records both).
"""

import pytest

from repro.analysis.stats import geometric_mean
from repro.config import ScaledArrayConfig
from repro.sim.runner import measure_attack_lifetime, measure_trace_lifetime
from repro.traces.parsec import get_profile, make_benchmark_trace

SCALED = ScaledArrayConfig(n_pages=256, endurance_mean=3072.0)


def _attack_fraction(scheme, attack, **kwargs):
    return measure_attack_lifetime(
        scheme, attack, scaled=SCALED, **kwargs
    ).lifetime_fraction


class TestInconsistentAttackClaims:
    """Section 3 + Figure 6: the attack breaks prediction-based schemes."""

    def test_bwl_breaks_down_quickly(self):
        # "PCM adopting BWL breaks down in 98 seconds".
        bwl = _attack_fraction("bwl", "inconsistent")
        assert bwl < 0.05

    def test_twl_resists_the_attack(self):
        twl = _attack_fraction("twl_swp", "inconsistent")
        bwl = _attack_fraction("bwl", "inconsistent")
        assert twl > 10 * bwl

    def test_sr_unaffected_by_attack_choice(self):
        # SR's randomization makes all attacks look alike (~2.8 years).
        fractions = [
            _attack_fraction("sr", attack)
            for attack in ("random", "scan", "inconsistent")
        ]
        assert max(fractions) < 1.7 * min(fractions)

    def test_wrl_vulnerable_too(self):
        # The attack also defeats the Figure-1 walkthrough scheme.
        assert _attack_fraction("wrl", "inconsistent") < 0.3


class TestFigure6Shape:
    def test_twl_beats_sr_overall(self):
        attacks = ("repeat", "random", "scan", "inconsistent")
        twl = geometric_mean([_attack_fraction("twl_swp", a) for a in attacks])
        sr = geometric_mean([_attack_fraction("sr", a) for a in attacks])
        assert twl > 1.15 * sr

    def test_swp_beats_ap(self):
        # "a 21.7% lifetime improvement is achieved by TWL_swp".  The
        # full margin needs the default array scale (the benchmark
        # harness shows ~20-30%); at this test's reduced scale sojourn
        # variance compresses it, so assert the ordering with a modest
        # floor on the repeat-attack cell where pairing matters most.
        swp = _attack_fraction("twl_swp", "repeat")
        ap = _attack_fraction("twl_ap", "repeat")
        assert swp > 1.15 * ap

    def test_nowl_dies_under_repeat(self):
        assert _attack_fraction("nowl", "repeat") < 0.01

    def test_uniform_attacks_bounded_by_weakest_page(self):
        # Random/scan wear uniformly; the weakest of the (tail-faithful)
        # population sits at ~0.42-0.44 of the mean.
        for scheme in ("nowl", "sr", "twl_swp"):
            fraction = _attack_fraction(scheme, "scan")
            assert 0.3 < fraction < 0.5


class TestFigure8Shape:
    @pytest.fixture(scope="class")
    def fractions(self):
        trace = make_benchmark_trace(get_profile("canneal"), SCALED.n_pages, 80_000)
        return {
            scheme: measure_trace_lifetime(scheme, trace, scaled=SCALED).lifetime_fraction
            for scheme in ("nowl", "sr", "bwl", "twl")
        }

    def test_pv_aware_beats_sr(self, fractions):
        assert fractions["twl"] > fractions["sr"]
        assert fractions["bwl"] > fractions["sr"]

    def test_everything_beats_nowl(self, fractions):
        for scheme in ("sr", "bwl", "twl"):
            assert fractions[scheme] > 5 * fractions["nowl"]

    def test_nowl_matches_table2_concentration(self, fractions):
        # NOWL lifetime fraction ~ 1/concentration by construction.
        expected = 1.0 / get_profile("canneal").concentration
        assert fractions["nowl"] == pytest.approx(expected, rel=0.4)


class TestFigure7Shape:
    def test_toss_up_overhead_near_paper_at_32(self):
        # "interval 32 ... incurs about 2.2% additional writes".
        result = measure_attack_lifetime("twl_swp", "random", scaled=SCALED)
        assert 0.01 < result.overhead_ratio < 0.06
