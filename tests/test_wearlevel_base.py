"""Tests for the WearLeveler base class contract."""

import pytest

from repro.errors import AddressError
from repro.pcm.array import PCMArray
from repro.wearlevel.base import SWAP_VISIBLE_THRESHOLD, WearLeveler


class _Dummy(WearLeveler):
    """Minimal subclass: identity mapping, swap every 4th write."""

    name = "dummy"

    def __init__(self, array):
        super().__init__(array)
        self._count = 0

    def translate(self, logical):
        self.check_logical(logical)
        return logical

    def write(self, logical):
        self.check_logical(logical)
        self.array.write(logical)
        self._count_demand()
        self._count += 1
        if self._count % 4 == 0:
            partner = (logical + 1) % self.array.n_pages
            self.array.write(partner)
            self._count_swap(1)
            return 2
        return 1


@pytest.fixture
def dummy():
    return _Dummy(PCMArray.uniform(8, 10_000))


class TestBaseContract:
    def test_logical_pages_defaults_to_physical(self, dummy):
        assert dummy.logical_pages == 8

    def test_check_logical_bounds(self, dummy):
        with pytest.raises(AddressError):
            dummy.check_logical(-1)
        with pytest.raises(AddressError):
            dummy.check_logical(8)
        dummy.check_logical(0)
        dummy.check_logical(7)

    def test_read_is_translate(self, dummy):
        assert dummy.read(3) == dummy.translate(3)
        assert dummy.array.total_writes == 0

    def test_counters_accumulate(self, dummy):
        for _ in range(8):
            dummy.write(0)
        assert dummy.demand_writes == 8
        assert dummy.swap_events == 2
        assert dummy.swap_writes == 2
        assert dummy.total_physical_writes == 10

    def test_swap_write_ratio(self, dummy):
        for _ in range(8):
            dummy.write(0)
        assert dummy.swap_write_ratio() == pytest.approx(0.25)

    def test_ratio_zero_before_writes(self, dummy):
        assert dummy.swap_write_ratio() == 0.0

    def test_stats_shape(self, dummy):
        dummy.write(0)
        stats = dummy.stats()
        assert set(stats) >= {
            "demand_writes",
            "swap_writes",
            "swap_events",
            "swap_write_ratio",
        }

    def test_swap_visibility_threshold(self, dummy):
        # The side channel: a swap-carrying request returns >= threshold.
        results = [dummy.write(0) for _ in range(4)]
        assert results[-1] >= SWAP_VISIBLE_THRESHOLD
        assert all(r < SWAP_VISIBLE_THRESHOLD for r in results[:-1])

    def test_repr_contains_counts(self, dummy):
        dummy.write(0)
        assert "demand_writes=1" in repr(dummy)
