"""Batch-identity contract: batched runs are bit-identical to serial.

Every registered scheme × every registered attack is driven twice at
1024 pages — once through the per-write path, once through the batched
write protocol — and the full observable state is compared: the
``LifetimeResult`` (failure page, demand/device writes), the per-page
write counts, and the scheme's counters (swap writes, swap events, all
``stats()`` entries).  This contract is what allows ``batch_size`` to be
excluded from the exec-layer cache fingerprint.

The endurance mean is kept low and the demand quota capped so the whole
grid stays fast; cells that do not reach failure within the quota still
compare their complete intermediate state, which exercises the identity
on the no-failure path too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.registry import attack_names, make_attack
from repro.config import SoftErrorConfig
from repro.engine import InvariantCheckObserver
from repro.pcm.array import PCMArray
from repro.sim.drivers import AttackDriver, StreamDriver, TraceDriver
from repro.sim.lifetime import run_to_failure
from repro.traces import OP_READ, OP_WRITE, FTLWorkloadStream
from repro.traces.trace import Trace
from repro.wearlevel.registry import make_scheme, scheme_names

_N_PAGES = 1024
_ENDURANCE = 2048
_MAX_DEMAND = 120_000
_BATCH_SIZE = 64


def _run_attack(scheme_name, attack_name, batch_size, **kwargs):
    array = PCMArray.uniform(_N_PAGES, _ENDURANCE)
    scheme = make_scheme(scheme_name, array, seed=11)
    attack = make_attack(attack_name, scheme.logical_pages, seed=11)
    result = run_to_failure(
        scheme,
        AttackDriver(attack),
        max_demand=_MAX_DEMAND,
        require_failure=False,
        batch_size=batch_size,
        **kwargs,
    )
    return result, array.write_counts(), scheme.stats()


@pytest.mark.parametrize("attack_name", attack_names())
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_batched_identical_to_serial(scheme_name, attack_name):
    serial, serial_counts, serial_stats = _run_attack(
        scheme_name, attack_name, batch_size=1
    )
    batched, batched_counts, batched_stats = _run_attack(
        scheme_name, attack_name, batch_size=_BATCH_SIZE
    )
    assert batched == serial
    assert np.array_equal(batched_counts, serial_counts)
    assert batched_stats == serial_stats


@pytest.mark.parametrize("batch_size", [2, 17, 500, 8192])
def test_identity_across_batch_sizes(batch_size):
    """Odd, tiny and larger-than-run batch sizes all match serial."""
    serial, serial_counts, serial_stats = _run_attack(
        "twl", "repeat", batch_size=1
    )
    batched, batched_counts, batched_stats = _run_attack(
        "twl", "repeat", batch_size=batch_size
    )
    assert batched == serial
    assert np.array_equal(batched_counts, serial_counts)
    assert batched_stats == serial_stats


@pytest.mark.parametrize("attack_name", attack_names())
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_rate_zero_faults_and_checker_are_inert(scheme_name, attack_name):
    """A rate-0 soft-error config plus the invariant checker changes
    nothing: every scheme × attack cell stays bit-identical to the plain
    run.  This doubles as a full-matrix run of the invariant checker —
    every scheme's steady-state tables satisfy the invariants at every
    4th step of every workload."""
    plain, plain_counts, plain_stats = _run_attack(
        scheme_name, attack_name, batch_size=1
    )
    checker = InvariantCheckObserver(every=4)
    checked, checked_counts, checked_stats = _run_attack(
        scheme_name,
        attack_name,
        batch_size=_BATCH_SIZE,
        soft_errors=SoftErrorConfig(rate=0.0, seed=11),
        observers=[checker],
    )
    assert checked == plain
    assert np.array_equal(checked_counts, plain_counts)
    assert checked_stats == plain_stats
    assert checker.checks > 0


def _run_trace(scheme_name, batch_size):
    array = PCMArray.uniform(_N_PAGES, _ENDURANCE)
    scheme = make_scheme(scheme_name, array, seed=11)
    rng = np.random.default_rng(7)
    # Stay within the scheme's logical space (StartGap reserves a page).
    writes = rng.integers(0, scheme.logical_pages, size=5000)
    trace = Trace.writes_only(writes, name="synthetic")
    driver = TraceDriver(trace, scheme.logical_pages)
    result = run_to_failure(
        scheme,
        driver,
        max_demand=_MAX_DEMAND,
        require_failure=False,
        batch_size=batch_size,
    )
    return result, array.write_counts(), scheme.stats()


@pytest.mark.parametrize("scheme_name", ["nowl", "startgap", "twl", "sr"])
def test_trace_driver_identity(scheme_name):
    serial, serial_counts, serial_stats = _run_trace(scheme_name, 1)
    batched, batched_counts, batched_stats = _run_trace(scheme_name, 256)
    assert batched == serial
    assert np.array_equal(batched_counts, serial_counts)
    assert batched_stats == serial_stats


# --- streamed vs materialized identity -------------------------------
#
# The chunk-identity contract: a StreamDriver pulling a workload in
# chunks serves exactly the write sequence the materialized TraceDriver
# serves, so streamed runs are bit-identical to materialized runs at
# any chunk size × batch size.  This is what allows ``chunk_size`` to
# be excluded from the exec-layer cache fingerprint.  Scales here are
# smaller than the attack matrix above: the matrix is scheme-wide and
# each cell runs the workload twice.

_STREAM_N_PAGES = 256
_STREAM_ENDURANCE = 1024
_STREAM_MAX_DEMAND = 60_000


def _mixed_stream_trace(n_pages: int) -> Trace:
    """A read/write mix so streamed runs exercise the op filter."""
    rng = np.random.default_rng(7)
    n_requests = 4000
    ops = np.where(rng.random(n_requests) < 0.75, OP_WRITE, OP_READ).astype(np.uint8)
    pages = rng.integers(0, n_pages, size=n_requests)
    return Trace(ops, pages, name="synthetic")


def _run_stream_trace(scheme_name, chunk_size, batch_size):
    array = PCMArray.uniform(_STREAM_N_PAGES, _STREAM_ENDURANCE)
    scheme = make_scheme(scheme_name, array, seed=11)
    trace = _mixed_stream_trace(scheme.logical_pages)
    if chunk_size is None:
        driver = TraceDriver(trace, scheme.logical_pages)
    else:
        driver = StreamDriver(trace.stream(chunk_size), scheme.logical_pages)
    result = run_to_failure(
        scheme,
        driver,
        max_demand=_STREAM_MAX_DEMAND,
        require_failure=False,
        batch_size=batch_size,
    )
    return result, array.write_counts(), scheme.stats()


@pytest.mark.parametrize("scheme_name", scheme_names())
def test_streamed_identical_to_materialized(scheme_name):
    serial, serial_counts, serial_stats = _run_stream_trace(
        scheme_name, chunk_size=None, batch_size=1
    )
    streamed, streamed_counts, streamed_stats = _run_stream_trace(
        scheme_name, chunk_size=97, batch_size=_BATCH_SIZE
    )
    assert streamed == serial
    assert np.array_equal(streamed_counts, serial_counts)
    assert streamed_stats == serial_stats


@pytest.mark.parametrize("chunk_size", [1, 63, 64, 65])
def test_stream_chunk_boundaries_around_batch_size(chunk_size):
    """Chunk sizes at and astride the batch size (64) change nothing.

    Chunk 1 forces a short batch at every engine step; 63/65 misalign
    every chunk boundary against the batch boundary."""
    serial, serial_counts, serial_stats = _run_stream_trace(
        "twl", chunk_size=None, batch_size=1
    )
    streamed, streamed_counts, streamed_stats = _run_stream_trace(
        "twl", chunk_size=chunk_size, batch_size=_BATCH_SIZE
    )
    assert streamed == serial
    assert np.array_equal(streamed_counts, serial_counts)
    assert streamed_stats == serial_stats


def _run_ftl(scheme_name, chunk_size, batch_size):
    array = PCMArray.uniform(_STREAM_N_PAGES, _STREAM_ENDURANCE)
    scheme = make_scheme(scheme_name, array, seed=11)
    stream = FTLWorkloadStream(scheme.logical_pages, seed=11, chunk_size=chunk_size)
    result = run_to_failure(
        scheme,
        StreamDriver(stream, scheme.logical_pages),
        max_demand=_STREAM_MAX_DEMAND,
        require_failure=False,
        batch_size=batch_size,
    )
    return result, array.write_counts(), scheme.stats()


@pytest.mark.parametrize("scheme_name", ["sr", "wrl", "bwl", "twl"])
def test_ftl_stream_chunk_and_batch_invariance(scheme_name):
    """The endless FTL generator has no materialized counterpart, so
    its identity contract is stated across execution knobs: any
    (chunk_size, batch_size) pair yields the same run."""
    reference = _run_ftl(scheme_name, chunk_size=512, batch_size=1)
    for chunk_size, batch_size in ((97, 64), (4096, 256)):
        other = _run_ftl(scheme_name, chunk_size, batch_size)
        assert other[0] == reference[0]
        assert np.array_equal(other[1], reference[1])
        assert other[2] == reference[2]


def test_adaptive_attack_degrades_to_per_write_batches():
    """Adaptive attacks keep their feedback loop under batching."""
    attack = make_attack("inconsistent", _N_PAGES, seed=11)
    if not attack.is_adaptive:
        pytest.skip("inconsistent attack is not adaptive in this build")
    driver = AttackDriver(attack)
    batch = driver.next_batch(64)
    assert len(batch) == 1
