"""Tests for drivers, run-to-failure and the lifetime record."""

import numpy as np
import pytest

from repro.attacks.repeat import RepeatWriteAttack
from repro.attacks.scan import ScanWriteAttack
from repro.errors import SimulationError
from repro.pcm.array import PCMArray
from repro.sim.drivers import AttackDriver, TraceDriver
from repro.sim.lifetime import LifetimeResult, run_to_failure
from repro.sim.metrics import measure_scheme_overheads
from repro.traces.trace import Trace
from repro.wearlevel.nowl import NoWearLeveling
from repro.wearlevel.security_refresh import SecurityRefresh


class TestTraceDriver:
    def test_loops_trace(self):
        array = PCMArray.uniform(8, 10**6)
        scheme = NoWearLeveling(array)
        driver = TraceDriver(Trace.writes_only([0, 1, 2]), 8)
        served = driver.drive(scheme, 10)
        assert served == 10
        assert driver.loops_completed == 3
        assert array.page_writes(0) == 4

    def test_stops_on_failure(self):
        array = PCMArray.uniform(4, 5)
        scheme = NoWearLeveling(array)
        driver = TraceDriver(Trace.writes_only([0]), 4)
        served = driver.drive(scheme, 100)
        assert served == 5
        assert array.has_failure

    def test_position_persists_between_calls(self):
        array = PCMArray.uniform(8, 10**6)
        scheme = NoWearLeveling(array)
        driver = TraceDriver(Trace.writes_only([0, 1, 2, 3]), 8)
        driver.drive(scheme, 2)
        driver.drive(scheme, 2)
        assert array.page_writes(3) == 1

    def test_rejects_trace_outside_space(self):
        with pytest.raises(SimulationError):
            TraceDriver(Trace.writes_only([100]), 8)

    def test_rejects_readonly_trace(self):
        trace = Trace(np.array([0], dtype=np.uint8), np.array([1], dtype=np.int64))
        with pytest.raises(SimulationError):
            TraceDriver(trace, 8)


class TestAttackDriver:
    def test_drives_attack(self):
        array = PCMArray.uniform(8, 10**6)
        scheme = NoWearLeveling(array)
        driver = AttackDriver(ScanWriteAttack(8))
        assert driver.drive(scheme, 16) == 16
        assert (array.write_counts() == 2).all()

    def test_feedback_reaches_attack(self):
        array = PCMArray.uniform(64, 10**6)
        scheme = SecurityRefresh(array, seed=1)
        attack = ScanWriteAttack(64)
        driver = AttackDriver(attack)
        driver.drive(scheme, 1000)
        assert attack.writes_emitted == 1000

    def test_workload_name(self):
        assert AttackDriver(RepeatWriteAttack(4)).workload_name == "repeat"


class TestRunToFailure:
    def test_result_fields(self):
        array = PCMArray.uniform(4, 100)
        scheme = NoWearLeveling(array)
        result = run_to_failure(scheme, AttackDriver(RepeatWriteAttack(4)))
        assert result.failed
        assert result.scheme == "nowl"
        assert result.workload == "repeat"
        assert result.demand_writes == 100
        assert result.device_writes == 100
        assert result.failure.physical_page == 0
        assert result.estimation == "exact"

    def test_lifetime_fraction(self):
        array = PCMArray.uniform(4, 100)
        scheme = NoWearLeveling(array)
        result = run_to_failure(scheme, AttackDriver(RepeatWriteAttack(4)))
        assert result.lifetime_fraction == pytest.approx(100 / 400)

    def test_cap_raises_without_failure(self):
        array = PCMArray.uniform(4, 10**6)
        scheme = NoWearLeveling(array)
        with pytest.raises(SimulationError):
            run_to_failure(scheme, AttackDriver(ScanWriteAttack(4)), max_demand=100)

    def test_cap_tolerated_when_not_required(self):
        array = PCMArray.uniform(4, 10**6)
        scheme = NoWearLeveling(array)
        result = run_to_failure(
            scheme,
            AttackDriver(ScanWriteAttack(4)),
            max_demand=100,
            require_failure=False,
        )
        assert not result.failed
        assert result.demand_writes == 100

    def test_rejects_failed_array(self):
        array = PCMArray.uniform(2, 1)
        array.write(0)
        scheme = NoWearLeveling(array)
        with pytest.raises(SimulationError):
            run_to_failure(scheme, AttackDriver(RepeatWriteAttack(2)))


class TestLifetimeResultConversions:
    def _result(self, fraction=0.5, n=1000, endurance=1000.0):
        return LifetimeResult(
            scheme="twl",
            workload="scan",
            n_pages=n,
            endurance_mean=endurance,
            demand_writes=int(fraction * n * endurance),
            device_writes=int(fraction * n * endurance),
            failed=True,
            failure=None,
        )

    def test_years_scales_with_fraction(self):
        full = self._result(1.0).years(100.0)
        half = self._result(0.5).years(100.0)
        assert half == pytest.approx(full / 2)

    def test_overhead_ratio(self):
        result = LifetimeResult(
            scheme="x",
            workload="y",
            n_pages=10,
            endurance_mean=10.0,
            demand_writes=100,
            device_writes=120,
            failed=True,
            failure=None,
        )
        assert result.overhead_ratio == pytest.approx(0.2)

    def test_years_at_bytes(self):
        result = self._result(1.0)
        mbps = result.years(100.0)
        direct = result.years_at_bytes_per_second(100e6)
        assert mbps == pytest.approx(direct)


class TestMetrics:
    def test_overheads_measured(self):
        array = PCMArray.uniform(64, 10**9)
        scheme = SecurityRefresh(array, seed=1)
        driver = AttackDriver(ScanWriteAttack(64))
        overheads = measure_scheme_overheads(scheme, driver, 20_000)
        assert overheads.demand_writes == 20_000
        assert overheads.swap_write_ratio == pytest.approx(2 / 128, rel=0.3)

    def test_rejects_zero_writes(self):
        array = PCMArray.uniform(8, 100)
        scheme = NoWearLeveling(array)
        with pytest.raises(ValueError):
            measure_scheme_overheads(scheme, AttackDriver(ScanWriteAttack(8)), 0)
