"""Run the doctests embedded in module documentation.

The examples in docstrings are part of the public documentation; this
keeps them executable so they can never drift from the implementation.
"""

import doctest

import pytest

import repro.analysis.models
import repro.analysis.stats
import repro.exec.hashing
import repro.exec.policy
import repro.pcm.stats
import repro.rng.streams
import repro.units

_MODULES = (
    repro.units,
    repro.rng.streams,
    repro.analysis.stats,
    repro.analysis.models,
    repro.pcm.stats,
    repro.exec.hashing,
    repro.exec.policy,
)


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
