"""Tests for Security Refresh (behavioral and single-level models)."""

import numpy as np
import pytest

from repro.config import SecurityRefreshConfig
from repro.errors import ConfigError
from repro.pcm.array import PCMArray
from repro.wearlevel.security_refresh import (
    SecurityRefresh,
    SingleLevelSecurityRefresh,
)


class TestBehavioralSR:
    def test_translation_consistent_with_writes(self):
        array = PCMArray.uniform(64, 100_000)
        scheme = SecurityRefresh(array, SecurityRefreshConfig(refresh_interval=8), seed=1)
        for step in range(500):
            la = step % 64
            pa = scheme.translate(la)
            scheme.write(la)
            assert array.page_writes(pa) >= 1

    def test_mapping_stays_bijective(self):
        array = PCMArray.uniform(64, 100_000)
        scheme = SecurityRefresh(array, SecurityRefreshConfig(refresh_interval=4), seed=1)
        for step in range(1000):
            scheme.write(step % 64)
        scheme.remap.validate()

    def test_overhead_matches_interval(self):
        array = PCMArray.uniform(64, 10**9)
        scheme = SecurityRefresh(array, SecurityRefreshConfig(refresh_interval=128), seed=1)
        for step in range(60_000):
            scheme.write(step % 64)
        # 2 writes per refresh, one refresh per ~128 writes.
        assert scheme.swap_write_ratio() == pytest.approx(2 / 128, rel=0.25)

    def test_uniformizes_repeat_writes(self):
        array = PCMArray.uniform(64, 10**9)
        scheme = SecurityRefresh(array, SecurityRefreshConfig(refresh_interval=8), seed=1)
        for _ in range(40_000):
            scheme.write(0)
        counts = array.write_counts()
        touched = int((counts > 0).sum())
        assert touched > 48  # hammering one LA reaches most frames

    def test_no_phase_lock_with_periodic_stream(self):
        # A write stream with the same period as the refresh interval must
        # not always remap the same logical page.
        array = PCMArray.uniform(64, 10**9)
        scheme = SecurityRefresh(array, SecurityRefreshConfig(refresh_interval=16), seed=3)
        start_frames = [scheme.translate(la) for la in range(16)]
        for step in range(32_000):
            scheme.write(step % 16)
        moved = sum(
            1 for la in range(16) if scheme.translate(la) != start_frames[la]
        )
        assert moved >= 12


class TestSingleLevelSR:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigError):
            SingleLevelSecurityRefresh(PCMArray.uniform(100, 1000))

    def test_requires_divisible_region(self):
        with pytest.raises(ConfigError):
            SingleLevelSecurityRefresh(
                PCMArray.uniform(64, 1000), SecurityRefreshConfig(region_pages=128)
            )

    def test_mapping_bijective_through_sweep(self):
        array = PCMArray.uniform(32, 10**9)
        scheme = SingleLevelSecurityRefresh(
            array, SecurityRefreshConfig(refresh_interval=2), seed=5
        )
        for step in range(5000):
            scheme.write(step % 32)
            frames = [scheme.translate(la) for la in range(32)]
            assert sorted(frames) == list(range(32))

    def test_regions_confine_mapping(self):
        array = PCMArray.uniform(64, 10**9)
        scheme = SingleLevelSecurityRefresh(
            array, SecurityRefreshConfig(refresh_interval=2, region_pages=16), seed=5
        )
        for step in range(2000):
            scheme.write(step % 64)
        for la in range(64):
            assert scheme.translate(la) // 16 == la // 16

    def test_key_rotation_changes_mapping(self):
        array = PCMArray.uniform(16, 10**9)
        scheme = SingleLevelSecurityRefresh(
            array, SecurityRefreshConfig(refresh_interval=1), seed=5
        )
        initial = [scheme.translate(la) for la in range(16)]
        for step in range(64):  # several full sweeps
            scheme.write(step % 16)
        assert [scheme.translate(la) for la in range(16)] != initial

    def test_swap_cost_two_writes_per_step(self):
        array = PCMArray.uniform(32, 10**9)
        scheme = SingleLevelSecurityRefresh(
            array, SecurityRefreshConfig(refresh_interval=4), seed=5
        )
        for step in range(4000):
            scheme.write(step % 32)
        # Half the sweep steps hit the already-swapped partner (cost 0),
        # so the average is ~1 write per refresh step = 0.25/write.
        assert 0.1 < scheme.swap_write_ratio() < 0.4
