"""Tests for the plain-text trace format."""

import pytest

from repro.errors import TraceError
from repro.traces.text_format import load_text_trace, save_text_trace
from repro.traces.trace import Trace


class TestLoad:
    def test_parses_ops_and_pages(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# a comment\n"
            "W 0x1000\n"
            "R 4096\n"
            "\n"
            "W 8192 latency=12\n"
        )
        trace = load_text_trace(str(path))
        assert trace.n_requests == 3
        assert trace.n_writes == 2
        assert list(trace.pages) == [1, 1, 2]

    def test_lowercase_ops_accepted(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("w 0\nr 0\n")
        assert load_text_trace(str(path)).n_writes == 1

    def test_custom_page_size(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 256\n")
        trace = load_text_trace(str(path), page_bytes=256)
        assert list(trace.pages) == [1]

    def test_name_from_filename(self, tmp_path):
        path = tmp_path / "mybench.trace"
        path.write_text("W 0\n")
        assert load_text_trace(str(path)).name == "mybench"

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_text_trace(str(tmp_path / "none.trace"))

    def test_rejects_bad_op(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("X 0\n")
        with pytest.raises(TraceError, match="unknown op"):
            load_text_trace(str(path))

    def test_rejects_bad_address(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W zz\n")
        with pytest.raises(TraceError, match="bad address"):
            load_text_trace(str(path))

    def test_rejects_short_line(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W\n")
        with pytest.raises(TraceError):
            load_text_trace(str(path))

    def test_rejects_empty_trace(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# only comments\n")
        with pytest.raises(TraceError):
            load_text_trace(str(path))

    def test_rejects_non_power_of_two_page(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 0\n")
        with pytest.raises(TraceError):
            load_text_trace(str(path), page_bytes=3000)


class TestRoundtrip:
    def test_save_then_load(self, tmp_path):
        original = Trace.writes_only([0, 7, 3], name="rt", write_bandwidth_mbps=5.0)
        path = str(tmp_path / "rt.trace")
        save_text_trace(original, path)
        loaded = load_text_trace(str(path), write_bandwidth_mbps=5.0)
        assert list(loaded.pages) == [0, 7, 3]
        assert loaded.n_writes == 3

    def test_saved_file_is_readable_text(self, tmp_path):
        path = str(tmp_path / "x.trace")
        save_text_trace(Trace.writes_only([1]), path)
        content = open(path).read()
        assert "W 0x1000" in content
