"""Integration tests: every experiment module runs at the quick scale."""

import pytest

from repro.experiments import ablations, energy, fig6, fig7, fig8, fig9, overhead, table1, table2
from repro.experiments.setups import (
    ATTACKS,
    BENCHMARKS,
    ExperimentSetup,
    active_setup,
    default_setup,
    quick_setup,
)
from repro.config import ScaledArrayConfig


@pytest.fixture(scope="module")
def setup() -> ExperimentSetup:
    """A tiny-but-valid setup so the whole matrix runs in seconds."""
    quick = quick_setup()
    return ExperimentSetup(
        scaled=ScaledArrayConfig(n_pages=128, endurance_mean=1536.0),
        benchmarks=("canneal", "vips"),
        trace_writes=30_000,
        overhead_writes=20_000,
    )


class TestSetups:
    def test_default_covers_all_benchmarks(self):
        assert default_setup().benchmarks == BENCHMARKS

    def test_quick_is_smaller(self):
        assert quick_setup().n_pages < default_setup().n_pages

    def test_active_setup_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        assert active_setup().n_pages == quick_setup().n_pages
        monkeypatch.delenv("REPRO_QUICK")
        assert active_setup().n_pages == default_setup().n_pages


class TestTable1:
    def test_renders(self, setup):
        table = table1.run(setup)
        assert len(table) > 10
        assert "32.0 GiB" in table.render()


class TestTable2:
    def test_rows_and_sanity(self, setup):
        table = table2.run(setup)
        rows = {row["benchmark"]: row for row in table.rows()}
        assert set(rows) == {"canneal", "vips"}
        for row in rows.values():
            # Reproduced ideal within rounding of the paper's column.
            assert row["ideal_years"] == pytest.approx(row["ideal_paper"], rel=0.07)
            # No-WL lifetime within a factor band of the paper's.
            assert row["nowl_years"] == pytest.approx(row["nowl_paper"], rel=0.5)


class TestFig6:
    def test_matrix_shape(self, setup):
        table = fig6.run(setup)
        assert len(table) == 5
        columns = set(table.columns)
        assert {"scheme", "gmean_years"} <= columns
        for attack in ATTACKS:
            assert f"{attack}_years" in columns

    def test_quick_death_report(self, setup):
        report = fig6.quick_death_report(setup)
        schemes = {row["scheme"] for row in report.rows()}
        assert "bwl" in schemes  # the paper's 98-second breakdown


class TestFig7:
    def test_sweep(self, setup):
        table = fig7.run(setup)
        ratios = [row["swap_write_ratio"] for row in table.rows()]
        intervals = [row["toss_up_interval"] for row in table.rows()]
        assert intervals == list(fig7.INTERVALS)
        # Swap ratio must fall monotonically (roughly 1/interval).
        assert ratios[0] > 5 * ratios[-1]
        assert ratios[0] > 0.1


class TestFig8:
    def test_matrix(self, setup):
        table = fig8.run(setup)
        rows = table.rows()
        assert rows[-1]["benchmark"] == "gmean"
        gmean = rows[-1]
        # Orderings the paper reports: PV-aware schemes beat SR; every
        # scheme beats NOWL by an order of magnitude.
        assert gmean["twl"] > gmean["sr"]
        assert gmean["bwl"] > gmean["sr"]
        assert gmean["nowl"] < 0.1


class TestFig9:
    def test_matrix(self, setup):
        table = fig9.run(setup)
        rows = table.rows()
        assert rows[-1]["benchmark"] == "average"
        average = rows[-1]
        assert 1.0 < average["twl"] < 1.1
        assert average["bwl"] > average["twl"]


class TestEnergy:
    def test_matrix(self, setup):
        table = energy.run(setup)
        average = table.rows()[-1]
        assert average["benchmark"] == "average"
        assert average["bwl"] > average["sr"]
        for scheme in ("bwl", "sr", "twl"):
            assert 0.0 < average[scheme] < 1.0


class TestOverhead:
    def test_report(self, setup):
        table = overhead.run(setup)
        quantities = {row["quantity"] for row in table.rows()}
        assert "total gates" in quantities


class TestAblations:
    def test_pairing(self, setup):
        table = ablations.pairing_ablation(setup)
        assert len(table) == 3

    def test_inter_pair(self, setup):
        table = ablations.inter_pair_interval_ablation(setup)
        overheads = [row["overhead_ratio"] for row in table.rows()]
        assert overheads[0] > overheads[-1]  # shorter interval, more wear

    def test_sigma(self, setup):
        table = ablations.sigma_ablation(setup)
        rows = table.rows()
        assert rows[0]["sigma_fraction"] == 0.0
        # Without PV both schemes are near-ideal under random writes.
        assert rows[0]["sr_years"] > rows[-1]["sr_years"]

    def test_remaining_endurance(self, setup):
        table = ablations.remaining_endurance_ablation(setup)
        assert {row["mode"] for row in table.rows()} == {"initial", "remaining"}

    def test_retirement(self, setup):
        table = ablations.retirement_ablation(setup)
        rows = {row["scheme"]: row for row in table.rows()}
        assert "twl_swp" in rows
        retire_rows = [r for n, r in rows.items() if n.startswith("retire")]
        assert len(retire_rows) == len(ablations.RETIREMENT_MARGINS)

    def test_footprint(self, setup):
        table = ablations.footprint_ablation(setup)
        assert len(table) == len(ablations.FOOTPRINT_FRACTIONS)

    def test_sr_levels(self, setup):
        table = ablations.sr_level_ablation(setup)
        rows = {row["scheme"]: row for row in table.rows()}
        # The single-level sweep dies quickly under the repeat attack —
        # the reason SR needs its second level.
        assert rows["sr_single"]["repeat"] < rows["sr"]["repeat"]


class TestResilienceSweep:
    def test_table_shape_and_deltas(self):
        from repro.experiments import resilience

        tiny = ExperimentSetup(
            scaled=ScaledArrayConfig(n_pages=64, endurance_mean=768.0),
            benchmarks=("canneal",),
            trace_writes=5_000,
            overhead_writes=5_000,
        )
        table = resilience.resilience_sweep(
            tiny,
            schemes=("twl_swp", "startgap"),
            rates=(1e-3,),
        )
        rows = list(table.rows())
        # Per scheme: one baseline + one row per protection.
        assert len(rows) == 2 * (1 + 3)
        by_scheme = {}
        for row in rows:
            by_scheme.setdefault(row["scheme"], []).append(row)
        for scheme, scheme_rows in by_scheme.items():
            baseline = scheme_rows[0]
            assert baseline["protection"] == "-"
            assert baseline["rate"] == 0.0
            assert baseline["delta_years"] == 0.0
            secded = [r for r in scheme_rows if r["protection"] == "secded"]
            assert secded and all(r["delta_years"] == 0.0 for r in secded)
            faulted = [r for r in scheme_rows if r["rate"] > 0]
            assert all(r["injected"] > 0 for r in faulted)
            # Check-bit cost grows with protection strength.
            none_cost = [r for r in scheme_rows if r["protection"] == "none"]
            parity = [r for r in scheme_rows if r["protection"] == "parity"]
            assert none_cost[0]["prot_overhead"] == 0.0
            assert 0.0 < parity[0]["prot_overhead"] < secded[0]["prot_overhead"]
