"""Tests for the composable simulation engine (repro.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.registry import make_attack
from repro.config import ScaledArrayConfig
from repro.engine import (
    BatchSnapshot,
    EngineObserver,
    SchemeOverheadsObserver,
    SimulationEngine,
    WearTimelineObserver,
)
from repro.errors import SimulationError
from repro.pcm.array import PCMArray
from repro.sim import measure_scheme_overheads
from repro.sim.drivers import AttackDriver
from repro.wearlevel.registry import make_scheme


def _engine(scheme_name="nowl", attack_name="scan", n_pages=64,
            endurance=500, **kwargs):
    array = PCMArray.uniform(n_pages, endurance)
    scheme = make_scheme(scheme_name, array, seed=3)
    attack = make_attack(attack_name, scheme.logical_pages, seed=3)
    return SimulationEngine(scheme, AttackDriver(attack), **kwargs)


class TestConstruction:
    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(SimulationError, match="batch size"):
            _engine(batch_size=0)
        with pytest.raises(SimulationError, match="batch size"):
            _engine(batch_size=-4)

    def test_rejects_non_positive_chunk(self):
        with pytest.raises(SimulationError, match="chunk size"):
            _engine(chunk_demand=0)

    def test_repr_names_scheme_and_workload(self):
        engine = _engine(batch_size=8)
        text = repr(engine)
        assert "nowl" in text and "scan" in text and "batch_size=8" in text


class TestDrive:
    def test_serves_exactly_the_quota(self):
        engine = _engine(endurance=10**6)
        assert engine.drive(1000) == 1000
        assert engine.demand_served == 1000
        assert engine.scheme.demand_writes == 1000

    def test_stops_at_failure(self):
        engine = _engine(n_pages=16, endurance=50)
        served = engine.drive(10**6)
        assert engine.scheme.array.failed
        assert served < 10**6
        assert engine.demand_served == served

    def test_batched_drive_respects_quota(self):
        engine = _engine(endurance=10**6, batch_size=64)
        assert engine.drive(100) == 100  # quota not a batch multiple
        assert engine.scheme.demand_writes == 100

    def test_rejects_negative_quota(self):
        with pytest.raises(ValueError):
            _engine().drive(-1)

    def test_simulated_time_accumulates_device_writes(self):
        engine = _engine(endurance=10**6)
        engine.drive(500)
        write_cycles = float(engine.timing.write_cycles)
        expected = write_cycles * engine.scheme.array.total_writes
        assert engine.simulated_cycles == pytest.approx(expected)
        assert engine.simulated_seconds() == pytest.approx(
            engine.timing.cycles_to_seconds(expected)
        )


class TestRun:
    def test_run_raises_on_prefailed_array(self):
        engine = _engine(n_pages=16, endurance=50)
        engine.run(10**6)
        fresh = SimulationEngine(engine.scheme, engine.driver)
        with pytest.raises(SimulationError, match="already failed"):
            fresh.run(10)

    def test_require_failure_raises_when_quota_too_small(self):
        engine = _engine(endurance=10**6)
        with pytest.raises(SimulationError, match="no failure within"):
            engine.run(100, require_failure=True)

    def test_outcome_fields(self):
        engine = _engine(n_pages=16, endurance=50)
        outcome = engine.run(10**6)
        assert outcome.failed
        assert outcome.failure is not None
        assert outcome.demand_writes == engine.demand_served
        assert outcome.device_writes == engine.scheme.array.total_writes
        assert outcome.batches == engine.batches


class _Recorder(EngineObserver):
    def __init__(self):
        self.started = 0
        self.ended = 0
        self.snapshots = []

    def on_run_start(self, engine):
        self.started += 1

    def on_batch(self, snapshot):
        self.snapshots.append(snapshot)

    def on_run_end(self, engine, outcome):
        self.ended += 1
        self.outcome = outcome


class TestObservers:
    def test_hooks_fire_in_order(self):
        recorder = _Recorder()
        engine = _engine(n_pages=16, endurance=50, batch_size=32,
                         observers=(recorder,))
        engine.run(10**6)
        assert recorder.started == 1
        assert recorder.ended == 1
        assert recorder.snapshots, "per-batch hook never fired"
        assert recorder.outcome.failed

    def test_snapshot_counters_are_cumulative(self):
        recorder = _Recorder()
        engine = _engine(endurance=10**6, batch_size=100,
                         observers=(recorder,))
        engine.drive(300)
        demands = [s.demand_writes for s in recorder.snapshots]
        assert demands == [100, 200, 300]
        assert [s.index for s in recorder.snapshots] == [0, 1, 2]
        assert all(isinstance(s, BatchSnapshot) for s in recorder.snapshots)

    def test_snapshot_wear_access(self):
        recorder = _Recorder()
        engine = _engine(endurance=10**6, batch_size=100,
                         observers=(recorder,))
        engine.drive(100)
        snapshot = recorder.snapshots[-1]
        assert snapshot.wear_counts().sum() == snapshot.device_writes
        assert snapshot.wear_fraction().max() <= 1.0
        assert "demand_writes" in snapshot.scheme_stats()

    def test_add_observer_after_construction(self):
        engine = _engine(endurance=10**6, batch_size=50)
        recorder = _Recorder()
        engine.add_observer(recorder)
        engine.drive(100)
        assert recorder.snapshots

    def test_wear_timeline_observer_thins_samples(self):
        timeline = WearTimelineObserver(every=2)
        engine = _engine(endurance=10**6, batch_size=10,
                         observers=(timeline,))
        engine.drive(100)  # 10 batches -> indices 0,2,4,6,8 sampled
        assert len(timeline.samples) == 5
        demand, wear = timeline.samples[0]
        assert demand == 10
        assert isinstance(wear, np.ndarray)

    def test_wear_timeline_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            WearTimelineObserver(every=0)

    def test_overheads_observer_matches_measure_function(self):
        observer = SchemeOverheadsObserver()
        engine = _engine("twl", endurance=10**7, observers=(observer,))
        engine.run(5000)
        array = PCMArray.uniform(64, 10**7)
        scheme = make_scheme("twl", array, seed=3)
        attack = make_attack("scan", scheme.logical_pages, seed=3)
        direct = measure_scheme_overheads(scheme, AttackDriver(attack), 5000)
        assert observer.overheads == direct


class _FlakyObserver(EngineObserver):
    def __init__(self, exc=RuntimeError("observer boom")):
        self.calls = 0
        self.exc = exc

    def on_batch(self, snapshot):
        self.calls += 1
        raise self.exc


class TestObserverDetach:
    """A broken metric observer degrades the run; it never aborts it."""

    def test_flaky_observer_detached_with_warning(self):
        flaky = _FlakyObserver()
        recorder = _Recorder()
        engine = _engine(endurance=10**6, batch_size=50,
                         observers=(flaky, recorder))
        with pytest.warns(RuntimeWarning, match="detached"):
            engine.drive(500)
        # Fired once, then detached; the healthy observer kept running.
        assert flaky.calls == 1
        assert len(recorder.snapshots) == 10

    def test_detached_observer_does_not_change_results(self):
        plain = _engine(n_pages=16, endurance=50)
        plain_outcome = plain.run(10**6)
        flaky = _engine(n_pages=16, endurance=50,
                        observers=(_FlakyObserver(),))
        with pytest.warns(RuntimeWarning):
            flaky_outcome = flaky.run(10**6)
        assert flaky_outcome == plain_outcome

    def test_critical_observer_propagates(self):
        flaky = _FlakyObserver()
        flaky.critical = True
        engine = _engine(endurance=10**6, observers=(flaky,))
        with pytest.raises(RuntimeError, match="observer boom"):
            engine.drive(500)
        assert flaky.calls == 1

    def test_flaky_run_end_hook_also_detaches(self):
        class EndFlaky(EngineObserver):
            def on_run_end(self, engine, outcome):
                raise ValueError("end boom")

        engine = _engine(n_pages=16, endurance=50,
                         observers=(EndFlaky(),))
        with pytest.warns(RuntimeWarning, match="on_run_end"):
            outcome = engine.run(10**6)
        assert outcome.failed


class TestRunnerIntegration:
    """The sim layer is a thin configuration of the engine."""

    def test_lifetime_batch_sizes_identical(self):
        from repro.sim import measure_attack_lifetime

        scaled = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)
        serial = measure_attack_lifetime("startgap", "repeat", scaled=scaled)
        batched = measure_attack_lifetime(
            "startgap", "repeat", scaled=scaled, batch_size=256
        )
        assert serial == batched

    def test_fastforward_accepts_batch_size(self):
        from repro.sim import FastForwardConfig, measure_attack_lifetime

        scaled = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)
        ff = FastForwardConfig(warmup_demand=2000, window_demand=1000)
        serial = measure_attack_lifetime(
            "nowl", "random", scaled=scaled, fastforward=True, ff_config=ff
        )
        batched = measure_attack_lifetime(
            "nowl", "random", scaled=scaled, fastforward=True, ff_config=ff,
            batch_size=128,
        )
        assert serial == batched
