"""Tests for analysis helpers: stats, tables, extrapolation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.extrapolate import (
    fraction_to_full_scale_years,
    targeted_attack_full_scale_seconds,
)
from repro.analysis.stats import geometric_mean, summarize
from repro.analysis.tables import ResultTable, ascii_bar_chart, format_table
from repro.config import PAPER_PCM


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_between_min_and_max_property(self, values):
        gmean = geometric_mean(values)
        assert min(values) - 1e-9 <= gmean <= max(values) + 1e-9


class TestSummarize:
    def test_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert set(summary) == {"mean", "min", "max", "std", "gmean"}

    def test_gmean_omitted_for_zeros(self):
        assert "gmean" not in summarize([0.0, 1.0])


class TestFormatTable:
    def test_renders_aligned(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T")

    def test_tiny_nonzero_floats_keep_their_magnitude(self):
        text = format_table(["rate", "cost"], [[1e-4, 7.6e-12]], precision=2)
        assert "0.0001" in text and "7.6e-12" in text
        assert format_table(["z"], [[0.0]], precision=2).endswith("0.00")

    def test_none_cell(self):
        assert "-" in format_table(["x"], [[None]])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestAsciiBarChart:
    def test_renders_bars(self):
        chart = ascii_bar_chart(["one", "two"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["x"], [-1.0])

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["x"], [1.0, 2.0])


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable(["scheme", "years"])
        table.add_row(scheme="twl", years=4.4)
        assert "twl" in table.render()
        assert len(table) == 1

    def test_missing_cells_are_none(self):
        table = ResultTable(["a", "b"])
        table.add_row(a=1)
        assert table.rows()[0]["b"] is None

    def test_rejects_unknown_column(self):
        table = ResultTable(["a"])
        with pytest.raises(ValueError):
            table.add_row(zz=1)

    def test_column_access(self):
        table = ResultTable(["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column("a") == [1, 2]
        with pytest.raises(ValueError):
            table.column("b")

    def test_csv(self):
        table = ResultTable(["a", "b"])
        table.add_row(a=1, b="x")
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "x" in csv


class TestExtrapolation:
    def test_fraction_to_years(self):
        years = fraction_to_full_scale_years(0.5, 8e9)
        full = fraction_to_full_scale_years(1.0, 8e9)
        assert years == pytest.approx(full / 2)

    def test_targeted_attack_seconds_scale_free(self):
        # Same victim mechanism measured on different array sizes gives
        # the same absolute time: fraction scales as 1/n.
        seconds_small = targeted_attack_full_scale_seconds(0.02, 512, 8e9)
        seconds_large = targeted_attack_full_scale_seconds(0.01, 1024, 8e9)
        assert seconds_small == pytest.approx(seconds_large)

    def test_bwl_breakdown_is_minutes_not_years(self):
        # The measured BWL/inconsistent fraction (~0.015 at 1024 pages)
        # extrapolates to minutes at full scale, matching the paper's
        # order of magnitude ("98 seconds").
        seconds = targeted_attack_full_scale_seconds(0.015, 1024, 8e9, PAPER_PCM)
        assert 60 < seconds < 3600

    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            fraction_to_full_scale_years(-0.1, 1e9)
        with pytest.raises(ValueError):
            targeted_attack_full_scale_seconds(-0.1, 100, 1e9)

    def test_rejects_bad_pages(self):
        with pytest.raises(ValueError):
            targeted_attack_full_scale_seconds(0.1, 0, 1e9)


class TestGroupedBarChart:
    def test_renders_groups_and_series(self):
        from repro.analysis.tables import grouped_bar_chart

        chart = grouped_bar_chart(
            ["canneal", "vips"], {"twl": [0.6, 0.5], "sr": [0.3, 0.3]}
        )
        assert "canneal:" in chart
        assert "twl" in chart and "sr" in chart

    def test_scaling_relative_to_peak(self):
        from repro.analysis.tables import grouped_bar_chart

        chart = grouped_bar_chart(["g"], {"a": [1.0], "b": [0.5]}, width=10)
        lines = [l for l in chart.splitlines() if "#" in l]
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_validation(self):
        import pytest
        from repro.analysis.tables import grouped_bar_chart

        with pytest.raises(ValueError):
            grouped_bar_chart([], {})
        with pytest.raises(ValueError):
            grouped_bar_chart(["g"], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            grouped_bar_chart(["g"], {"a": [-1.0]})
