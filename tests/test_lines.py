"""Tests for the line-granularity wear extension."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pcm.lines import (
    LineWearConfig,
    LineWearModel,
    derating_factor,
    effective_page_endurance,
)


class TestConfig:
    def test_defaults_match_table1_geometry(self):
        # 4 KB page / 128 B line = 32 lines.
        assert LineWearConfig().lines_per_page == 32

    def test_validation(self):
        with pytest.raises(ConfigError):
            LineWearConfig(lines_per_page=0)
        with pytest.raises(ConfigError):
            LineWearConfig(intra_page_sigma_fraction=1.0)
        with pytest.raises(ConfigError):
            LineWearConfig(line_dirty_probability=0.0)


class TestLineWearModel:
    def test_full_dirty_fails_at_weakest_line(self, rng):
        config = LineWearConfig(intra_page_sigma_fraction=0.1)
        model = LineWearModel(1000, config, rng)
        weakest = int(model.line_endurance.min())
        writes = 0
        while not model.write_page():
            writes += 1
        assert writes + 1 == weakest

    def test_partial_dirty_stretches_lifetime(self):
        config_full = LineWearConfig(line_dirty_probability=1.0)
        config_half = LineWearConfig(line_dirty_probability=0.5)
        full = effective_page_endurance(2000, config_full, np.random.default_rng(3))
        half = effective_page_endurance(2000, config_half, np.random.default_rng(3))
        assert half > full

    def test_failed_property(self, rng):
        model = LineWearModel(50, LineWearConfig(), rng)
        assert not model.failed
        while not model.write_page():
            pass
        assert model.failed

    def test_margin_decreases(self, rng):
        model = LineWearModel(1000, LineWearConfig(), rng)
        first = model.weakest_line_margin()
        for _ in range(100):
            model.write_page()
        assert model.weakest_line_margin() < first

    def test_rejects_bad_endurance(self, rng):
        with pytest.raises(ConfigError):
            LineWearModel(0, LineWearConfig(), rng)


class TestDerating:
    def test_no_variation_no_derating(self, rng):
        config = LineWearConfig(intra_page_sigma_fraction=0.0)
        assert derating_factor(1000, config, rng) == pytest.approx(1.0, abs=0.01)

    def test_variation_derates(self, rng):
        config = LineWearConfig(intra_page_sigma_fraction=0.1)
        factor = derating_factor(10_000, config, rng, samples=16)
        # Min of 32 draws at sigma=10% sits ~2 sigma below the mean.
        assert 0.7 < factor < 0.9

    def test_more_variation_more_derating(self, rng):
        mild = derating_factor(
            10_000, LineWearConfig(intra_page_sigma_fraction=0.02), rng, samples=16
        )
        harsh = derating_factor(
            10_000, LineWearConfig(intra_page_sigma_fraction=0.15), rng, samples=16
        )
        assert harsh < mild

    def test_rejects_zero_samples(self, rng):
        with pytest.raises(ConfigError):
            derating_factor(100, LineWearConfig(), rng, samples=0)
