"""Tests for the parallel experiment executor and on-disk result cache."""

import pytest

from repro.config import ScaledArrayConfig, TWLConfig
from repro.errors import CellExecutionError, ConfigError, SimulationError
from repro.exec import (
    CellCache,
    ExperimentCell,
    attack_cell,
    cell_fingerprint,
    execute_cells,
    overheads_cell,
    run_cells,
    trace_cell,
)
from repro.sim.replicates import replicate_attack_lifetime

SCALED = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)


def _grid():
    """A 2×2 scheme/attack cell grid, small enough to run in <1 s."""
    return [
        attack_cell(scheme, attack, scaled=SCALED, seed=11)
        for scheme in ("nowl", "sr")
        for attack in ("repeat", "scan")
    ]


class TestCellSpecs:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            ExperimentCell(kind="nope", scheme="sr", workload="scan")

    def test_trace_cell_needs_length(self):
        with pytest.raises(ConfigError):
            ExperimentCell(kind="trace", scheme="sr", workload="vips")

    def test_overheads_cell_needs_budget(self):
        with pytest.raises(ConfigError):
            ExperimentCell(
                kind="overheads", scheme="sr", workload="vips", trace_writes=100
            )

    def test_describe_includes_identity(self):
        cell = attack_cell("twl_swp", "scan", scaled=SCALED, seed=3, label="row=1")
        described = cell.describe()
        assert "twl_swp" in described
        assert "scan" in described
        assert "seed=3" in described
        assert "row=1" in described


class TestParallelIdentity:
    def test_parallel_bit_identical_to_serial(self):
        cells = _grid()
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert serial == parallel  # LifetimeResult dataclass equality

    def test_trace_and_overheads_cells_parallel(self):
        cells = [
            trace_cell("sr", "vips", trace_writes=5_000, scaled=SCALED, seed=5),
            trace_cell("nowl", "vips", trace_writes=5_000, scaled=SCALED, seed=5),
            overheads_cell(
                "twl",
                "vips",
                trace_writes=5_000,
                drive_writes=4_000,
                scaled=SCALED,
                seed=5,
                scheme_kwargs={"config": TWLConfig()},
            ),
        ]
        assert run_cells(cells, jobs=2) == run_cells(cells, jobs=1)

    def test_results_keep_input_order(self):
        cells = _grid()
        outcomes = execute_cells(cells, jobs=2)
        assert [o.cell for o in outcomes] == cells
        for outcome in outcomes:
            assert outcome.seconds >= 0.0
            assert not outcome.cached


class TestCache:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cells = _grid()
        first_cache = CellCache(str(tmp_path))
        first = run_cells(cells, cache=first_cache)
        assert first_cache.misses == len(cells)
        assert first_cache.hits == 0

        second_cache = CellCache(str(tmp_path))
        second = run_cells(cells, cache=second_cache)
        assert second_cache.hits == len(cells)
        assert second_cache.misses == 0
        assert first == second

    def test_cache_hit_skips_simulation(self, tmp_path, monkeypatch):
        cells = _grid()
        run_cells(cells, cache=CellCache(str(tmp_path)))

        def boom(cell):
            raise AssertionError("simulation ran despite a warm cache")

        monkeypatch.setattr("repro.exec.executor.run_cell", boom)
        results = run_cells(cells, cache=CellCache(str(tmp_path)))
        assert len(results) == len(cells)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cell = _grid()[0]
        cache = CellCache(str(tmp_path))
        cache.put(cell, run_cells([cell])[0])
        cache.path_for(cell_fingerprint(cell))
        with open(cache.path_for(cell_fingerprint(cell)), "w") as handle:
            handle.write("{not json")
        fresh = CellCache(str(tmp_path))
        assert fresh.get(cell) is None
        assert fresh.misses == 1

    def test_overheads_round_trip(self, tmp_path):
        cell = overheads_cell(
            "twl", "vips", trace_writes=5_000, drive_writes=4_000,
            scaled=SCALED, seed=5,
        )
        cache = CellCache(str(tmp_path))
        direct = run_cells([cell], cache=cache)[0]
        cached = CellCache(str(tmp_path)).get(cell)
        assert cached == direct


class TestFingerprint:
    def test_stable_for_equal_specs(self):
        assert cell_fingerprint(_grid()[0]) == cell_fingerprint(_grid()[0])

    def test_changes_with_spec(self):
        base = attack_cell("sr", "scan", scaled=SCALED, seed=11)
        assert cell_fingerprint(base) != cell_fingerprint(
            attack_cell("sr", "scan", scaled=SCALED, seed=12)
        )
        assert cell_fingerprint(base) != cell_fingerprint(
            attack_cell("nowl", "scan", scaled=SCALED, seed=11)
        )

    def test_changes_with_nested_config(self):
        base = attack_cell("twl_swp", "scan", scaled=SCALED, seed=11)
        tweaked = attack_cell(
            "twl_swp",
            "scan",
            scaled=SCALED,
            seed=11,
            scheme_kwargs={"config": TWLConfig(toss_up_interval=16)},
        )
        assert cell_fingerprint(base) != cell_fingerprint(tweaked)

    def test_changes_with_version(self):
        cell = _grid()[0]
        assert cell_fingerprint(cell) != cell_fingerprint(cell, version="0.0.0")

    def test_version_change_invalidates_cache_entry(self, tmp_path):
        # The cache file is addressed by fingerprint, so a version bump
        # maps the same cell to a new key: nothing is found there.
        cell = _grid()[0]
        cache = CellCache(str(tmp_path))
        result = run_cells([cell], cache=cache)[0]
        stale_path = cache.path_for(cell_fingerprint(cell, version="0.0.0"))
        fresh_path = cache.path_for(cell_fingerprint(cell))
        import os

        assert os.path.exists(fresh_path)
        assert not os.path.exists(stale_path)
        assert result is not None


class TestFailureIdentity:
    def test_worker_error_names_cell_serial(self):
        cells = [attack_cell("no_such_scheme", "scan", scaled=SCALED, seed=9)]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=1)
        message = str(excinfo.value)
        assert "no_such_scheme" in message
        assert "seed=9" in message

    def test_worker_error_names_cell_parallel(self):
        cells = _grid() + [attack_cell("no_such_scheme", "scan", scaled=SCALED, seed=9)]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=2)
        message = str(excinfo.value)
        assert "no_such_scheme" in message
        assert "seed=9" in message

    def test_cell_error_is_a_simulation_error(self):
        # Callers catching the package hierarchy keep working.
        assert issubclass(CellExecutionError, SimulationError)

    def test_replicate_failure_names_replicate(self):
        with pytest.raises(SimulationError) as excinfo:
            replicate_attack_lifetime(
                "no_such_scheme", "scan", n_replicates=1, scaled=SCALED
            )
        assert "replicate=0" in str(excinfo.value)
        assert "seed=" in str(excinfo.value)


class TestCLIParallelSmoke:
    """`make quick-parallel` path: fig6 --quick --jobs 2 through the CLI."""

    def _tiny_setup(self):
        from repro.experiments.setups import ExperimentSetup

        return ExperimentSetup(
            scaled=ScaledArrayConfig(n_pages=64, endurance_mean=768.0),
            benchmarks=("vips",),
            trace_writes=5_000,
            overhead_writes=4_000,
        )

    def test_fig6_quick_parallel_and_cached_rerun(self, tmp_path, capsys, monkeypatch):
        from repro import cli

        monkeypatch.setattr(cli, "quick_setup", self._tiny_setup)
        argv = [
            "fig6",
            "--quick",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert "Figure 6" in first

        # Immediate re-run: identical output, every cell a cache hit.
        assert cli.main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        progress = captured.err
        assert "(cached)" in progress
        assert progress.count("(cached)") == progress.count("…")

    def test_no_cache_flag(self, tmp_path, monkeypatch):
        from repro import cli

        monkeypatch.setattr(cli, "quick_setup", self._tiny_setup)
        assert cli.main(["fig6", "--quick", "--jobs", "2", "--no-cache"]) == 0

    def test_unusable_cache_dir_is_a_clean_error(self, tmp_path, capsys, monkeypatch):
        from repro import cli

        monkeypatch.setattr(cli, "quick_setup", self._tiny_setup)
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        rc = cli.main(["fig6", "--quick", "--cache-dir", str(blocker)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "twl-repro: error:" in err
        assert str(blocker) in err

    def test_parser_accepts_executor_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fig8", "--quick", "--jobs", "4", "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert not args.no_cache


class TestSetupWiring:
    def test_setup_has_executor_fields(self):
        from repro.experiments.setups import default_setup

        setup = default_setup()
        assert setup.jobs == 1
        assert setup.cache_dir is None

    def test_active_setup_reads_env(self, monkeypatch):
        from repro.experiments.setups import active_setup

        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/twl-cache")
        setup = active_setup()
        assert setup.jobs == 3
        assert setup.cache_dir == "/tmp/twl-cache"

    def test_replicates_parallel_identical(self):
        serial = replicate_attack_lifetime("sr", "scan", n_replicates=3, scaled=SCALED)
        parallel = replicate_attack_lifetime(
            "sr", "scan", n_replicates=3, scaled=SCALED, jobs=2
        )
        assert serial.fractions == parallel.fractions
