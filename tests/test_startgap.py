"""Tests for Start-Gap wear leveling."""

import pytest

from repro.config import StartGapConfig
from repro.errors import ConfigError
from repro.pcm.array import PCMArray
from repro.wearlevel.start_gap import StartGap


def _make(n_pages=17, interval=4, randomize=False):
    array = PCMArray.uniform(n_pages, 10_000)
    config = StartGapConfig(gap_move_interval=interval, randomize=randomize)
    return array, StartGap(array, config=config, seed=1)


class TestMapping:
    def test_reserves_one_spare(self):
        array, scheme = _make(17)
        assert scheme.logical_pages == 16

    def test_initial_identity(self):
        _, scheme = _make(randomize=False)
        for la in range(16):
            assert scheme.translate(la) == la

    def test_mapping_is_injective_always(self):
        array, scheme = _make(interval=1)
        for step in range(200):
            scheme.write(step % 16)
            frames = [scheme.translate(la) for la in range(16)]
            assert len(set(frames)) == 16

    def test_gap_moves_after_interval(self):
        _, scheme = _make(interval=4)
        before = [scheme.translate(la) for la in range(16)]
        for _ in range(4):
            scheme.write(0)
        after = [scheme.translate(la) for la in range(16)]
        assert before != after

    def test_randomized_mapping_still_injective(self):
        array, scheme = _make(interval=2, randomize=True)
        for step in range(100):
            scheme.write(step % 16)
        frames = [scheme.translate(la) for la in range(16)]
        assert len(set(frames)) == 16


class TestWear:
    def test_gap_move_costs_one_write(self):
        array, scheme = _make(interval=4)
        total = sum(scheme.write(0) for _ in range(4))
        assert total == 5  # 4 demand + 1 gap move
        assert scheme.swap_writes == 1

    def test_spreads_repeat_writes_over_time(self):
        array, scheme = _make(n_pages=9, interval=1)
        for _ in range(2000):
            scheme.write(3)
        worn_pages = int((array.write_counts() > 0).sum())
        assert worn_pages == 9  # rotation reaches every frame

    def test_overhead_ratio(self):
        _, scheme = _make(interval=4)
        for _ in range(400):
            scheme.write(0)
        assert scheme.swap_write_ratio() == pytest.approx(0.25, rel=0.1)


class TestValidation:
    def test_rejects_single_frame(self):
        with pytest.raises(ConfigError):
            StartGap(PCMArray.uniform(1, 100))
