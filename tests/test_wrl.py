"""Tests for Wear Rate Leveling."""

import numpy as np
import pytest

from repro.config import WRLConfig
from repro.pcm.array import PCMArray
from repro.wearlevel.wrl import PHASE_PREDICTION, PHASE_RUNNING, WearRateLeveling


def _make(n_pages=16, endurance=None, prediction=1.0, multiplier=2.0):
    if endurance is None:
        array = PCMArray.uniform(n_pages, 10**6)
    else:
        array = PCMArray(np.asarray(endurance))
    config = WRLConfig(
        prediction_writes_per_page=prediction, running_multiplier=multiplier
    )
    return array, WearRateLeveling(array, config=config, seed=1)


class TestPhases:
    def test_starts_in_prediction(self):
        _, scheme = _make()
        assert scheme.phase == PHASE_PREDICTION

    def test_transitions_to_running_after_prediction(self):
        _, scheme = _make(n_pages=4, prediction=1.0)
        for step in range(4):
            scheme.write(step % 4)
        assert scheme.phase == PHASE_RUNNING
        assert scheme.swap_phases_completed == 1

    def test_cycles_back_to_prediction(self):
        _, scheme = _make(n_pages=4, prediction=1.0, multiplier=2.0)
        for step in range(4 + 8):
            scheme.write(step % 4)
        assert scheme.phase == PHASE_PREDICTION
        assert scheme.wnt.total == 0  # cleared for the new phase


class TestSwapPlacement:
    def test_hot_page_lands_on_least_worn_per_endurance(self):
        endurance = [100, 10_000, 10_000, 10_000]
        array, scheme = _make(endurance=endurance, prediction=4.0)
        # Make page 0 clearly hottest during prediction (16 writes total).
        for _ in range(13):
            scheme.write(0)
        for la in (1, 2, 3):
            scheme.write(la)
        # After the swap phase, LA 0 must not sit on the weak frame 0
        # (writing frame 0 made its wear rate by far the highest).
        assert scheme.translate(0) != 0

    def test_mapping_bijective_after_many_phases(self):
        array, scheme = _make(n_pages=8, prediction=1.0, multiplier=1.0)
        for step in range(500):
            scheme.write((step * 3) % 8)
        scheme.remap.validate()

    def test_swap_costs_accounted(self):
        # A skewed stream forces migrations (uniform round-robin with
        # uniform endurance leaves the identity mapping optimal).
        endurance = [(k + 1) * 1000 for k in range(8)]
        array, scheme = _make(endurance=endurance, prediction=1.0, multiplier=1.0)
        for step in range(200):
            scheme.write(0 if step % 3 else step % 8)
        assert scheme.swap_writes > 0
        assert array.total_writes == scheme.demand_writes + scheme.swap_writes

    def test_rotation_under_repeat(self):
        # Wear-rate ranking must rotate a hammered page across frames.
        array, scheme = _make(n_pages=8, prediction=1.0, multiplier=1.0)
        frames = set()
        for _ in range(64):
            scheme.write(0)
            frames.add(scheme.translate(0))
        assert len(frames) >= 4


class TestWearRates:
    def test_wear_rates_shape(self):
        _, scheme = _make(n_pages=8)
        assert scheme.wear_rates().shape == (8,)

    def test_wear_rates_reflect_writes(self):
        endurance = [100, 200, 300, 400]
        array, scheme = _make(endurance=endurance, prediction=100.0)
        scheme.write(0)
        rates = scheme.wear_rates()
        assert rates[scheme.translate(0)] > 0
