"""Tests for attack workloads."""

import pytest

from repro.attacks.inconsistent import InconsistentWriteAttack
from repro.attacks.random_attack import RandomWriteAttack
from repro.attacks.registry import attack_names, make_attack
from repro.attacks.repeat import RepeatWriteAttack
from repro.attacks.scan import ScanWriteAttack
from repro.errors import ConfigError


class TestRepeat:
    def test_fixed_address(self):
        attack = RepeatWriteAttack(16, target=5)
        assert [attack.next_write() for _ in range(5)] == [5] * 5

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            RepeatWriteAttack(16, target=16)

    def test_write_counter(self):
        attack = RepeatWriteAttack(4)
        for _ in range(7):
            attack.next_write()
        assert attack.writes_emitted == 7


class TestRandom:
    def test_in_range(self):
        attack = RandomWriteAttack(32, seed=1)
        for _ in range(1000):
            assert 0 <= attack.next_write() < 32

    def test_covers_space(self):
        attack = RandomWriteAttack(16, seed=1)
        seen = {attack.next_write() for _ in range(500)}
        assert seen == set(range(16))

    def test_deterministic(self):
        a = RandomWriteAttack(32, seed=5)
        b = RandomWriteAttack(32, seed=5)
        assert [a.next_write() for _ in range(50)] == [b.next_write() for _ in range(50)]


class TestScan:
    def test_sequential_with_wrap(self):
        attack = ScanWriteAttack(4, start=2)
        assert [attack.next_write() for _ in range(6)] == [2, 3, 0, 1, 2, 3]

    def test_rejects_bad_start(self):
        with pytest.raises(ValueError):
            ScanWriteAttack(4, start=4)


class TestInconsistent:
    def test_low_positions_cold_in_step_one(self):
        attack = InconsistentWriteAttack(
            256, n_targets=16, background_scan=False, initial_period=160
        )
        counts = {}
        for _ in range(sum(attack._staircase_weights())):
            page = attack.next_write()
            counts[page] = counts.get(page, 0) + 1
        assert counts[0] < counts[15]

    def test_reversal_on_detected_swap(self):
        attack = InconsistentWriteAttack(256, n_targets=16, background_scan=False)
        # Warm the detector baseline, then feed a blocking response.
        for _ in range(20):
            attack.next_write()
            attack.observe_response(2000.0)
        attack.observe_response(10_000.0)
        before = attack.reversals
        attack.next_write()
        assert attack.reversals == before + 1

    def test_reversal_flips_intensity(self):
        attack = InconsistentWriteAttack(
            256, n_targets=16, background_scan=False, initial_period=160
        )
        for _ in range(20):
            attack.next_write()
            attack.observe_response(2000.0)
        attack.observe_response(10_000.0)
        counts = {}
        for _ in range(sum(attack._staircase_weights())):
            page = attack.next_write()
            if page < 16:
                counts[page] = counts.get(page, 0) + 1
        assert counts[0] > counts[15]  # position 0 hammered after the flip

    def test_blind_flip_after_patience(self):
        attack = InconsistentWriteAttack(
            64, n_targets=8, patience=100, background_scan=False
        )
        for _ in range(150):
            attack.next_write()
            attack.observe_response(2000.0)
        assert attack.reversals >= 1

    def test_background_scan_touches_all_pages(self):
        attack = InconsistentWriteAttack(128, n_targets=16, initial_period=400)
        seen = set()
        for _ in range(3 * len(attack._pass_schedule)):
            seen.add(attack.next_write())
        assert seen == set(range(128))

    def test_victims_written_last_in_pass(self):
        attack = InconsistentWriteAttack(64, n_targets=8, initial_period=200)
        schedule = attack._pass_schedule
        tail = schedule[-attack.victim_count:]
        assert all(page < attack.n_targets for page in tail)

    def test_period_adaptation(self):
        attack = InconsistentWriteAttack(
            64, n_targets=8, background_scan=False, initial_period=64
        )
        for _ in range(20):
            attack.next_write()
            attack.observe_response(2000.0)
        for _ in range(300):
            attack.next_write()
            attack.observe_response(2000.0)
        attack.observe_response(10_000.0)
        assert attack.period_estimate > 64

    def test_victim_share_positive(self):
        attack = InconsistentWriteAttack(256, n_targets=16)
        assert 0 < attack.victim_share() < 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            InconsistentWriteAttack(16, n_targets=17)
        with pytest.raises(ConfigError):
            InconsistentWriteAttack(16, patience=0)
        with pytest.raises(ConfigError):
            InconsistentWriteAttack(16, n_targets=4, victim_count=5)


class TestNextWritesBatchIdentity:
    """``next_writes(n)`` must equal n serial ``next_write()`` calls.

    The vectorized overrides (scan, repeat) and the generic fallback
    all feed the batched engine; any drift here breaks the engine-wide
    batch-identity contract.
    """

    @pytest.mark.parametrize("name", attack_names())
    def test_matches_serial(self, name):
        serial = make_attack(name, 32, seed=9)
        batched = make_attack(name, 32, seed=9)
        expected = [serial.next_write() for _ in range(100)]
        got = []
        for chunk in (1, 7, 40, 52):
            got.extend(batched.next_writes(chunk).tolist())
        assert got == expected
        assert batched.writes_emitted == serial.writes_emitted
        assert batched.next_write() == serial.next_write()

    def test_zero_length_batch(self):
        attack = make_attack("scan", 8, seed=1)
        assert attack.next_writes(0).size == 0
        assert attack.writes_emitted == 0

    def test_negative_batch_rejected(self):
        attack = make_attack("scan", 8, seed=1)
        with pytest.raises(ValueError):
            attack.next_writes(-1)


class TestRegistry:
    def test_names_in_paper_order(self):
        assert attack_names() == ["repeat", "random", "scan", "inconsistent"]

    def test_make_all(self):
        for name in attack_names():
            attack = make_attack(name, 64, seed=3)
            assert 0 <= attack.next_write() < 64

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_attack("zeroday", 64)
