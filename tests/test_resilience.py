"""Fault-tolerant campaign execution, proven by deterministic fault injection.

Every recovery path of the executor is exercised here against
:mod:`repro.exec.faults`, whose injections are deterministic (keyed by
cell fingerprint + an injection seed) and cross the worker spawn
boundary via the ``REPRO_FAULTS`` environment variable:

* transient worker exceptions are retried and the final results are
  bit-identical to a clean serial run;
* a SIGKILL'd worker triggers a pool rebuild (and, past the rebuild
  budget, graceful degradation to serial) and the campaign completes;
* a cell exceeding the per-cell timeout fails with a
  ``CellExecutionError`` naming it, and under ``keep-going`` does not
  block the remaining cells;
* a killed campaign resumed from its checkpoint journal re-runs only
  the unfinished cells and matches the clean run exactly — with the
  cache disabled.
"""

import json
import os

import pytest

from repro.config import ScaledArrayConfig
from repro.errors import (
    CampaignError,
    CellExecutionError,
    CellTimeoutError,
    ConfigError,
)
from repro.exec import (
    CellCache,
    CheckpointJournal,
    FailurePolicy,
    FaultPlan,
    attack_cell,
    cell_fingerprint,
    execute_cells,
    run_cells,
)
from repro.exec.faults import (
    FAULTS_ENV,
    FaultInjectionError,
    _claim_injection,
    active_plan,
    maybe_inject,
)
from repro.exec.policy import ON_ERROR_KEEP_GOING, CellFailure

SCALED = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)

#: Retry policies in tests skip real backoff sleeping.
FAST_RETRY = dict(backoff_base=0.0)


def _grid():
    """A 2×2 scheme/attack cell grid, small enough to run in <1 s."""
    return [
        attack_cell(scheme, attack, scaled=SCALED, seed=11)
        for scheme in ("nowl", "sr")
        for attack in ("repeat", "scan")
    ]


def _arm(monkeypatch, tmp_path, **kwargs):
    """Activate a fault plan through the environment (spawn-safe)."""
    kwargs.setdefault("state_dir", str(tmp_path / "fault-state"))
    plan = FaultPlan(**kwargs)
    monkeypatch.setenv(FAULTS_ENV, plan.to_env())
    return plan


class _InterruptAfter:
    """Progress hook raising KeyboardInterrupt after N completed cells."""

    def __init__(self, n: int):
        self.n = n
        self.lines = []

    def __call__(self, line: str) -> None:
        self.lines.append(line)
        if sum(1 for recorded in self.lines if "…" in recorded) >= self.n:
            raise KeyboardInterrupt


class TestFailurePolicy:
    def test_defaults_match_historical_behavior(self):
        policy = FailurePolicy()
        assert policy.max_retries == 0
        assert policy.timeout is None
        assert not policy.keep_going

    def test_validation(self):
        with pytest.raises(ConfigError):
            FailurePolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            FailurePolicy(timeout=0.0)
        with pytest.raises(ConfigError):
            FailurePolicy(on_error="explode")
        with pytest.raises(ConfigError):
            FailurePolicy(backoff_jitter=1.5)

    def test_retry_delay_is_deterministic_and_grows(self):
        policy = FailurePolicy(max_retries=3, backoff_base=0.1, backoff_jitter=0.25)
        first = policy.retry_delay("fp", 1)
        assert first == policy.retry_delay("fp", 1)
        assert first != policy.retry_delay("other", 1)
        # Jitter is bounded, so the exponential trend survives it.
        assert policy.retry_delay("fp", 3) > policy.retry_delay("fp", 1)

    def test_zero_base_disables_sleeping(self):
        assert FailurePolicy(backoff_base=0.0).retry_delay("fp", 5) == 0.0


class TestFaultPlan:
    def test_selection_is_deterministic(self):
        plan = FaultPlan(mode="transient", rate=0.5, seed=3)
        fingerprints = [cell_fingerprint(cell) for cell in _grid()]
        first = [plan.selects(fp) for fp in fingerprints]
        assert first == [plan.selects(fp) for fp in fingerprints]
        assert all(FaultPlan(mode="transient", rate=1.0).selects(fp) for fp in fingerprints)
        assert not any(FaultPlan(mode="transient", rate=0.0).selects(fp) for fp in fingerprints)

    def test_env_round_trip(self, monkeypatch, tmp_path):
        armed = _arm(monkeypatch, tmp_path, mode="transient", times=2, max_total=5)
        assert active_plan() == armed

    def test_inactive_without_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_plan() is None
        maybe_inject(_grid()[0])  # no-op

    def test_bad_plan_is_a_config_error(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "{not json")
        with pytest.raises(ConfigError):
            active_plan()
        monkeypatch.setenv(FAULTS_ENV, json.dumps({"mode": "nope"}))
        with pytest.raises(ConfigError):
            active_plan()

    def test_budgets_claimed_atomically_across_instances(self, tmp_path):
        plan = FaultPlan(mode="transient", times=2, state_dir=str(tmp_path))
        assert _claim_injection(plan, "fp")
        assert _claim_injection(plan, "fp")
        assert not _claim_injection(plan, "fp")
        # A fresh plan object (fresh process, same state_dir) sees the
        # same exhausted budget — this is what survives SIGKILL.
        again = FaultPlan(mode="transient", times=2, state_dir=str(tmp_path))
        assert not _claim_injection(again, "fp")

    def test_transient_injection_raises_once_per_budget(self, monkeypatch, tmp_path):
        _arm(monkeypatch, tmp_path, mode="transient", times=1)
        cell = _grid()[0]
        with pytest.raises(FaultInjectionError):
            maybe_inject(cell)
        maybe_inject(cell)  # budget spent: clean


class TestTransientRetry:
    """Acceptance (a): retried campaigns are bit-identical to clean runs."""

    def test_parallel_retry_identity(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        _arm(monkeypatch, tmp_path, mode="transient", rate=1.0, times=1)
        policy = FailurePolicy(max_retries=2, **FAST_RETRY)
        assert run_cells(cells, jobs=2, policy=policy) == clean

    def test_serial_retry_identity(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        _arm(monkeypatch, tmp_path, mode="transient", rate=1.0, times=1)
        policy = FailurePolicy(max_retries=1, **FAST_RETRY)
        assert run_cells(cells, jobs=1, policy=policy) == clean

    def test_exhausted_budget_fails_fast(self, monkeypatch, tmp_path):
        _arm(monkeypatch, tmp_path, mode="transient", rate=1.0, times=10)
        policy = FailurePolicy(max_retries=1, **FAST_RETRY)
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(_grid(), jobs=1, policy=policy)
        assert "injected transient fault" in str(excinfo.value)

    def test_keep_going_finishes_siblings_and_summarizes(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        # Enough injections to exhaust one cell's retries, no more:
        # serially, cell 0 burns the whole global budget and fails;
        # cells 1..3 find it empty and run clean.
        _arm(monkeypatch, tmp_path, mode="transient", rate=1.0, times=10, max_total=2)
        policy = FailurePolicy(
            max_retries=1, on_error=ON_ERROR_KEEP_GOING, **FAST_RETRY
        )
        cache = CellCache(str(tmp_path / "cache"))
        with pytest.raises(CampaignError) as excinfo:
            run_cells(cells, jobs=1, cache=cache, policy=policy)
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert isinstance(failures[0], CellFailure)
        assert failures[0].cell == cells[0].describe()
        assert failures[0].attempts == 2
        # The siblings' results were kept (cached), so a repaired rerun
        # only pays for the failed cell.
        assert len(cache) == len(cells) - 1
        rerun = run_cells(cells, jobs=1, cache=CellCache(str(tmp_path / "cache")))
        assert rerun == clean


class TestLostResults:
    """Satellite: finished siblings are cached even when one cell fails."""

    def test_finished_siblings_cached_on_fail_fast(self, tmp_path):
        good = _grid()
        cells = [attack_cell("no_such_scheme", "scan", scaled=SCALED, seed=9)] + good
        cache = CellCache(str(tmp_path))
        with pytest.raises(CellExecutionError):
            run_cells(cells, jobs=2, cache=cache)
        # The bad cell fails almost instantly; every good cell that the
        # pool finished (including in-flight ones drained on abort)
        # must be in the cache.  All four run concurrently-ish, so all
        # four results are banked.
        assert len(cache) == len(good)


class TestTimeout:
    """Acceptance (c): per-cell wall-clock budget."""

    def test_timeout_names_cell_fail_fast(self, monkeypatch, tmp_path):
        cell = _grid()[0]
        _arm(monkeypatch, tmp_path, mode="hang", rate=1.0, times=1, hang_seconds=20.0)
        policy = FailurePolicy(timeout=0.3)
        with pytest.raises(CellTimeoutError) as excinfo:
            run_cells([cell], jobs=1, policy=policy)
        message = str(excinfo.value)
        assert cell.describe() in message
        assert "timed out" in message
        assert isinstance(excinfo.value, CellExecutionError)

    def test_timeout_keep_going_does_not_block_siblings(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        _arm(
            monkeypatch, tmp_path,
            mode="hang", rate=1.0, times=1, max_total=1, hang_seconds=20.0,
        )
        policy = FailurePolicy(timeout=0.3, on_error=ON_ERROR_KEEP_GOING)
        cache = CellCache(str(tmp_path / "cache"))
        with pytest.raises(CampaignError) as excinfo:
            run_cells(cells, jobs=2, cache=cache, policy=policy)
        assert len(excinfo.value.failures) == 1
        assert "timed out" in excinfo.value.failures[0].error
        assert len(cache) == len(cells) - 1
        # The timed-out cell is pure; a clean rerun converges on the
        # clean campaign bit-for-bit.
        rerun = run_cells(cells, jobs=1, cache=CellCache(str(tmp_path / "cache")))
        assert rerun == clean

    def test_timed_out_cell_can_be_retried(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        _arm(
            monkeypatch, tmp_path,
            mode="hang", rate=1.0, times=1, max_total=1, hang_seconds=20.0,
        )
        policy = FailurePolicy(timeout=0.3, max_retries=1, **FAST_RETRY)
        assert run_cells(cells, jobs=1, policy=policy) == clean


class TestWorkerCrashRecovery:
    """Acceptance (b): SIGKILL'd workers break the pool; we rebuild."""

    def test_sigkill_triggers_rebuild_and_completion(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        _arm(monkeypatch, tmp_path, mode="kill", rate=1.0, times=1, max_total=1)
        lines = []
        results = run_cells(cells, jobs=2, progress=lines.append)
        assert results == clean
        assert any("rebuilding" in line for line in lines)

    def test_repeated_breaks_degrade_to_serial(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        # One kill, zero tolerated rebuilds: the first break sends the
        # whole remainder to the serial fallback (kill budget already
        # spent, so the fallback is safe).
        _arm(monkeypatch, tmp_path, mode="kill", rate=1.0, times=1, max_total=1)
        policy = FailurePolicy(max_pool_rebuilds=0)
        lines = []
        results = run_cells(cells, jobs=2, policy=policy, progress=lines.append)
        assert results == clean
        assert any("degrading to serial" in line for line in lines)


class TestCheckpointResume:
    """Acceptance (d) + satellite: interruption leaves resumable state."""

    def _counting_run_cell(self, monkeypatch):
        from repro.exec import cells as cells_module

        calls = []
        original = cells_module.run_cell

        def counted(cell):
            calls.append(cell.describe())
            return original(cell)

        monkeypatch.setattr("repro.exec.executor.run_cell", counted)
        return calls

    def test_interrupt_serial_leaves_resumable_state(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        cache = CellCache(str(tmp_path / "cache"))
        manifest = str(tmp_path / "campaign.jsonl")
        hook = _InterruptAfter(2)
        with pytest.raises(KeyboardInterrupt):
            execute_cells(
                cells, jobs=1, cache=cache,
                journal=CheckpointJournal(manifest), progress=hook,
            )
        # Completed cells are durably recorded in both stores.
        assert len(cache) == 2
        resumed = CheckpointJournal(manifest)
        assert len(resumed) == 2
        # Resume re-runs only the unfinished cells and matches clean.
        calls = self._counting_run_cell(monkeypatch)
        results = run_cells(cells, jobs=1, journal=resumed)
        assert results == clean
        assert len(calls) == len(cells) - 2

    def test_interrupt_pool_leaves_resumable_state(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        cache = CellCache(str(tmp_path / "cache"))
        manifest = str(tmp_path / "campaign.jsonl")
        with pytest.raises(KeyboardInterrupt):
            execute_cells(
                cells, jobs=2, cache=cache,
                journal=CheckpointJournal(manifest), progress=_InterruptAfter(2),
            )
        resumed = CheckpointJournal(manifest)
        assert len(resumed) >= 2
        assert len(cache) >= 2
        assert run_cells(cells, jobs=1, journal=resumed) == clean

    def test_resume_without_cache_matches_clean_run(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        manifest = str(tmp_path / "campaign.jsonl")
        with pytest.raises(KeyboardInterrupt):
            execute_cells(
                cells, jobs=1, cache=None,
                journal=CheckpointJournal(manifest), progress=_InterruptAfter(2),
            )
        calls = self._counting_run_cell(monkeypatch)
        results = run_cells(cells, jobs=1, cache=None, journal=CheckpointJournal(manifest))
        assert results == clean
        assert len(calls) == len(cells) - 2

    def test_fully_journaled_campaign_reruns_nothing(self, monkeypatch, tmp_path):
        cells = _grid()
        manifest = str(tmp_path / "campaign.jsonl")
        clean = run_cells(cells, jobs=1, journal=CheckpointJournal(manifest))

        def explode(cell):
            raise AssertionError("cell ran despite a complete journal")

        monkeypatch.setattr("repro.exec.executor.run_cell", explode)
        outcomes = execute_cells(cells, jobs=1, journal=CheckpointJournal(manifest))
        assert [outcome.result for outcome in outcomes] == clean
        assert all(outcome.resumed and outcome.cached for outcome in outcomes)

    def test_journal_tolerates_truncated_final_line(self, tmp_path):
        cells = _grid()
        manifest = str(tmp_path / "campaign.jsonl")
        run_cells(cells[:2], jobs=1, journal=CheckpointJournal(manifest))
        with open(manifest, "a") as handle:
            handle.write('{"format": 1, "status": "done", "fingerpr')  # crash here
        resumed = CheckpointJournal(manifest)
        assert len(resumed) == 2
        # Appending after a truncated tail still yields decodable lines
        # for the new records.
        run_cells(cells, jobs=1, journal=resumed)
        assert len(CheckpointJournal(manifest)) == len(cells)

    def test_failed_cells_are_rerun_on_resume(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        manifest = str(tmp_path / "campaign.jsonl")
        _arm(monkeypatch, tmp_path, mode="transient", rate=1.0, times=10, max_total=2)
        policy = FailurePolicy(
            max_retries=1, on_error=ON_ERROR_KEEP_GOING, **FAST_RETRY
        )
        with pytest.raises(CampaignError):
            run_cells(cells, jobs=1, policy=policy, journal=CheckpointJournal(manifest))
        monkeypatch.delenv(FAULTS_ENV)
        resumed = CheckpointJournal(manifest)
        assert len(resumed) == len(cells) - 1
        assert resumed.failed_count == 1
        assert run_cells(cells, jobs=1, journal=resumed) == clean


class TestCacheRobustness:
    """Satellites: temp-file leak, corrupt-entry quarantine + counter."""

    def test_put_failure_leaves_no_temp_file(self, monkeypatch, tmp_path):
        cell = _grid()[0]
        result = run_cells([cell])[0]
        cache = CellCache(str(tmp_path))

        def exploding_dump(record, handle, **kwargs):
            handle.write('{"partial":')  # simulate dying mid-write
            raise OSError("disk full")

        monkeypatch.setattr("repro.exec.cache.json.dump", exploding_dump)
        with pytest.raises(OSError):
            cache.put(cell, result)
        leftovers = [name for name in os.listdir(str(tmp_path)) if ".tmp" in name]
        assert leftovers == []

    def test_corrupt_entry_is_counted_and_quarantined(self, tmp_path):
        cell = _grid()[0]
        cache = CellCache(str(tmp_path))
        cache.put(cell, run_cells([cell])[0])
        path = cache.path_for(cell_fingerprint(cell))
        with open(path, "w") as handle:
            handle.write("{not json")
        fresh = CellCache(str(tmp_path))
        assert fresh.get(cell) is None
        assert fresh.misses == 1
        assert fresh.corrupt == 1
        assert not os.path.exists(path)
        assert os.path.exists(f"{path}.corrupt")
        # Quarantined: the next lookup is a plain (non-corrupt) miss.
        assert fresh.get(cell) is None
        assert fresh.corrupt == 1
        assert "corrupt" in fresh.summary()

    def test_undecodable_payload_counts_as_corrupt(self, tmp_path):
        cell = _grid()[0]
        cache = CellCache(str(tmp_path))
        cache.put(cell, run_cells([cell])[0])
        path = cache.path_for(cell_fingerprint(cell))
        record = {"format": 1, "kind": "lifetime", "payload": {"nope": 1}}
        with open(path, "w") as handle:
            json.dump(record, handle)
        fresh = CellCache(str(tmp_path))
        assert fresh.get(cell) is None
        assert fresh.corrupt == 1
        assert os.path.exists(f"{path}.corrupt")

    def test_corrupt_fault_mode_end_to_end(self, monkeypatch, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        cache_dir = str(tmp_path / "cache")
        _arm(monkeypatch, tmp_path, mode="corrupt", rate=1.0, times=1)
        run_cells(cells, jobs=1, cache=CellCache(cache_dir))
        monkeypatch.delenv(FAULTS_ENV)
        # Every entry was garbled after write; the re-run quarantines
        # them all, recomputes, and still matches the clean campaign.
        recovery = CellCache(cache_dir)
        assert run_cells(cells, jobs=1, cache=recovery) == clean
        assert recovery.corrupt == len(cells)
        third = CellCache(cache_dir)
        assert run_cells(cells, jobs=1, cache=third) == clean
        assert third.hits == len(cells)
        assert third.corrupt == 0

    def test_cache_summary_reaches_progress_stream(self, tmp_path):
        cells = _grid()
        lines = []
        execute_cells(cells, jobs=1, cache=CellCache(str(tmp_path)), progress=lines.append)
        assert any(line.startswith("cache:") for line in lines)


class TestCLIResilienceFlags:
    def _tiny_setup(self):
        from repro.experiments.setups import ExperimentSetup

        return ExperimentSetup(
            scaled=ScaledArrayConfig(n_pages=64, endurance_mean=768.0),
            benchmarks=("vips",),
            trace_writes=5_000,
            overhead_writes=4_000,
        )

    def test_parser_accepts_resilience_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "fig6", "--quick", "--retries", "2",
                "--cell-timeout", "1.5", "--keep-going",
                "--resume", "/tmp/manifest.jsonl",
            ]
        )
        assert args.retries == 2
        assert args.cell_timeout == 1.5
        assert args.keep_going
        assert args.resume == "/tmp/manifest.jsonl"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--retries", "-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--cell-timeout", "0"])

    def test_cli_retries_through_faults(self, monkeypatch, tmp_path):
        from repro import cli

        monkeypatch.setattr(cli, "quick_setup", self._tiny_setup)
        clean_rc = cli.main(["fig6", "--quick", "--no-cache"])
        assert clean_rc == 0
        _arm(monkeypatch, tmp_path, mode="transient", rate=1.0, times=1)
        rc = cli.main(["fig6", "--quick", "--no-cache", "--jobs", "2", "--retries", "2"])
        assert rc == 0

    def test_cli_resume_completes_interrupted_campaign(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro import cli

        monkeypatch.setattr(cli, "quick_setup", self._tiny_setup)
        manifest = str(tmp_path / "manifest.jsonl")
        argv = [
            "fig6", "--quick", "--no-cache", "--resume", manifest,
        ]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        # Second run: everything is served from the journal.
        assert cli.main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        assert "(resumed)" in captured.err

    def test_cli_surfaces_corrupt_entries(self, monkeypatch, tmp_path, capsys):
        from repro import cli

        monkeypatch.setattr(cli, "quick_setup", self._tiny_setup)
        cache_dir = str(tmp_path / "cache")
        argv = ["fig6", "--quick", "--cache-dir", cache_dir]
        assert cli.main(argv) == 0
        capsys.readouterr()
        entries = [
            name for name in os.listdir(cache_dir) if name.endswith(".json")
        ]
        assert entries
        with open(os.path.join(cache_dir, entries[0]), "w") as handle:
            handle.write("{bit rot")
        assert cli.main(argv) == 0
        assert "corrupt entr" in capsys.readouterr().err

    def test_active_setup_reads_resilience_env(self, monkeypatch):
        from repro.experiments.setups import active_setup

        monkeypatch.setenv("REPRO_RETRIES", "3")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_KEEP_GOING", "1")
        monkeypatch.setenv("REPRO_RESUME", "/tmp/m.jsonl")
        setup = active_setup()
        assert setup.failure.max_retries == 3
        assert setup.failure.timeout == 2.5
        assert setup.failure.keep_going
        assert setup.resume == "/tmp/m.jsonl"


class TestTimeoutOutsideMainThread:
    """Satellite: the portable deadline enforces on *any* thread.

    The SIGALRM-era timeout silently degraded to warn-and-run off the
    main thread — exactly where the campaign server drives cells.  The
    :class:`repro.exec.deadline.CellDeadline` watchdog replaces it:
    off-main-thread cells are now genuinely budgeted, and in-budget
    cells finish warning-free with the same result.
    """

    def test_enforces_off_main_thread(self, monkeypatch, tmp_path):
        import threading

        from repro.exec.executor import _execute_one

        cell = attack_cell("nowl", "scan", scaled=SCALED, seed=11)
        _arm(monkeypatch, tmp_path, mode="hang", rate=1.0, times=1, hang_seconds=20.0)
        outcome = {}

        def work():
            try:
                outcome["result"] = _execute_one(cell, timeout=0.3)
            except BaseException as error:  # noqa: B036 - recording for assert
                outcome["error"] = error

        thread = threading.Thread(target=work)
        thread.start()
        # Well under hang_seconds: the budget, not the hang, ends the cell.
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "timeout was not enforced off the main thread"
        error = outcome.get("error")
        assert isinstance(error, CellTimeoutError), outcome
        assert cell.describe() in str(error)
        assert "timed out" in str(error)

    def test_off_main_thread_in_budget_is_warning_free(self):
        import threading
        import warnings

        from repro.exec.executor import _execute_one

        cell = attack_cell("nowl", "scan", scaled=SCALED, seed=11)
        expected = _execute_one(cell, timeout=None)
        outcome = {}

        def work():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                outcome["result"] = _execute_one(cell, timeout=30.0)
                outcome["messages"] = [str(w.message) for w in caught]

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert outcome["result"] == expected
        # The old degrade path warned "not enforceable" here; the
        # portable deadline enforces silently instead.
        assert not any(
            "not enforceable" in message for message in outcome["messages"]
        ), outcome["messages"]

    def test_main_thread_leaves_signals_untouched(self):
        import signal

        from repro.exec.executor import _execute_one

        cell = attack_cell("nowl", "scan", scaled=SCALED, seed=11)
        before = signal.getsignal(signal.SIGALRM)
        _execute_one(cell, timeout=30.0)
        # The deadline is signal-free: no handler swap, no pending
        # itimer — safe to nest under code that owns SIGALRM itself.
        assert signal.getsignal(signal.SIGALRM) == before
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_deadline_fires_and_never_leaks_past_disarm(self):
        """An expired deadline surfaces exactly once, and disarm
        neutralizes any still-pending injection — later code on the
        same thread must never see a stray ``DeadlineReached``."""
        import time as _time

        from repro.exec.deadline import CellDeadline, DeadlineReached

        deadline = CellDeadline(0.05)
        fired_in_block = False
        try:
            with deadline:
                # One long C sleep: the watchdog fires mid-sleep and the
                # injection lands at the first bytecode after it returns.
                _time.sleep(0.3)
        except DeadlineReached:
            fired_in_block = True
        assert deadline.fired
        assert fired_in_block
        # No second delivery: plenty of bytecode boundaries follow.
        for _ in range(100000):
            pass


class TestJournalCompaction:
    """Satellite: ``compact()`` rewrites superseded journal history."""

    def test_compact_drops_superseded_and_garbage(self, tmp_path):
        cells = _grid()
        clean = run_cells(cells, jobs=1)
        manifest = str(tmp_path / "campaign.jsonl")
        journal = CheckpointJournal(manifest)
        run_cells(cells[:2], jobs=1, journal=journal)
        # A cell that failed, then succeeded on a later attempt: the
        # failed line is superseded history.
        fingerprint = cell_fingerprint(cells[2])
        journal.record_failed(cells[2], fingerprint, "transient boom")
        journal.record_done(cells[2], fingerprint, run_cells([cells[2]])[0])
        with open(manifest, "a") as handle:
            handle.write("{garbage, not json\n")
        assert sum(1 for _ in open(manifest)) == 5
        assert journal.compact() == 2
        assert sum(1 for _ in open(manifest)) == 3
        reloaded = CheckpointJournal(manifest)
        assert len(reloaded) == 3
        assert reloaded.failed_count == 0
        # Compacting an already-minimal journal is a no-op.
        assert reloaded.compact() == 0
        assert run_cells(cells, jobs=1, journal=reloaded) == clean

    def test_failed_only_records_survive(self, tmp_path):
        manifest = str(tmp_path / "campaign.jsonl")
        journal = CheckpointJournal(manifest)
        cell = _grid()[0]
        journal.record_failed(cell, "fp-a", "first")
        journal.record_failed(cell, "fp-a", "second")
        assert journal.compact() == 1
        reloaded = CheckpointJournal(manifest)
        assert reloaded.failed_count == 1
        assert len(reloaded) == 0

    def test_auto_compact_on_open_past_threshold(self, tmp_path):
        cells = _grid()
        manifest = str(tmp_path / "campaign.jsonl")
        journal = CheckpointJournal(manifest)
        fingerprint = cell_fingerprint(cells[0])
        journal.record_failed(cells[0], fingerprint, "boom")
        journal.record_done(cells[0], fingerprint, run_cells([cells[0]])[0])
        assert sum(1 for _ in open(manifest)) == 2
        # Under the (default, generous) threshold: open leaves the file
        # byte-identical.
        before = open(manifest).read()
        CheckpointJournal(manifest)
        assert open(manifest).read() == before
        # Past the threshold: open compacts.
        compacted = CheckpointJournal(manifest, compact_bytes=1)
        assert compacted.resumed == 1
        assert sum(1 for _ in open(manifest)) == 1


class TestTimeoutSnapshotCleanup:
    """Satellite: a timed-out cell never leaks snapshot files."""

    def test_timeout_discards_snapshot_and_temps(self, monkeypatch, tmp_path):
        import dataclasses

        from repro.engine import write_snapshot
        from repro.exec import cell_snapshot_path

        cell = dataclasses.replace(
            _grid()[0],
            snapshot_every=1_000,
            snapshot_dir=str(tmp_path / "snaps"),
        )
        os.makedirs(cell.snapshot_dir)
        # The state a killed-by-timeout run would leave behind: a
        # durable snapshot plus a torn temp sibling.
        path = cell_snapshot_path(cell)
        write_snapshot(path, {"demand_served": 1_000})
        with open(f"{path}.12345.tmp", "wb") as handle:
            handle.write(b"partial")
        _arm(monkeypatch, tmp_path, mode="hang", rate=1.0, times=1, hang_seconds=20.0)
        with pytest.raises(CellTimeoutError):
            run_cells([cell], jobs=1, policy=FailurePolicy(timeout=0.3))
        assert os.listdir(cell.snapshot_dir) == []


class TestKillAndResume:
    """Tentpole acceptance: SIGKILL at an armed mid-run demand index,
    resume from the on-disk snapshot, bit-identical outcome."""

    EVERY = 3_000
    KILL_AT = 7_500

    def _stream_cell(self, tmp_path, snapshots=True):
        import dataclasses

        from repro.exec import stream_cell

        cell = stream_cell("twl", stream="ftl", scaled=SCALED, seed=11, chunk_size=512)
        cell = dataclasses.replace(cell, batch_size=16)
        if snapshots:
            cell = dataclasses.replace(
                cell,
                snapshot_every=self.EVERY,
                snapshot_dir=str(tmp_path / "snaps"),
            )
        return cell

    def test_kill_plan_validation(self):
        with pytest.raises(ConfigError, match="kill"):
            FaultPlan(mode="transient", kill_at_demand=100)
        with pytest.raises(ConfigError, match=">= 1"):
            FaultPlan(mode="kill", kill_at_demand=0)
        plan = FaultPlan(mode="kill", kill_at_demand=100)
        assert '"kill_at_demand": 100' in plan.to_env()

    def test_sigkill_midrun_is_crash_consistent(self, tmp_path):
        """Die for real at the armed demand index; the last cadence
        boundary's snapshot must be durable, and resuming from it must
        reproduce the uninterrupted run bit-exactly."""
        import dataclasses
        import subprocess
        import sys

        import repro
        from repro.engine import read_snapshot
        from repro.exec import cell_snapshot_path, run_cell

        cell = self._stream_cell(tmp_path)
        clean = run_cell(
            dataclasses.replace(cell, snapshot_every=0, snapshot_dir=None)
        )
        assert clean.demand_writes > self.KILL_AT  # the kill is mid-run
        plan = FaultPlan(
            mode="kill",
            kill_at_demand=self.KILL_AT,
            state_dir=str(tmp_path / "fault-state"),
        )
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "import sys, dataclasses\n"
            f"sys.path.insert(0, {src_root!r})\n"
            "from repro.config import ScaledArrayConfig\n"
            "from repro.exec import stream_cell\n"
            "from repro.exec.executor import _execute_one\n"
            "cell = dataclasses.replace(\n"
            "    stream_cell('twl', stream='ftl',\n"
            f"                scaled=ScaledArrayConfig(n_pages={SCALED.n_pages},\n"
            f"                                         endurance_mean={SCALED.endurance_mean}),\n"
            "                seed=11, chunk_size=512),\n"
            f"    batch_size=16, snapshot_every={self.EVERY},\n"
            f"    snapshot_dir={str(tmp_path / 'snaps')!r})\n"
            "_execute_one(cell, timeout=None)\n"
        )
        env = dict(os.environ, REPRO_FAULTS=plan.to_env())
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == -9, proc.stderr.decode()  # SIGKILLed
        # Crash consistency: the last snapshot before the kill point is
        # complete and durable.
        path = cell_snapshot_path(cell)
        _meta, state = read_snapshot(path)
        assert state["demand_served"] == (self.KILL_AT // self.EVERY) * self.EVERY
        # Resume (no faults armed) and compare bit-exactly.
        result = run_cell(cell)
        assert result == clean
        assert os.listdir(cell.snapshot_dir) == []

    def test_pool_recovers_from_midrun_kill_and_matches(self, monkeypatch, tmp_path):
        import dataclasses

        from repro.exec import stream_cell

        # Two cells so the pool path engages (a single pending cell
        # runs serially in the parent — where an armed kill would take
        # the campaign process down, by design of the kill mode).
        cells = [
            dataclasses.replace(
                stream_cell(
                    "twl", stream="ftl", scaled=SCALED, seed=seed, chunk_size=512
                ),
                batch_size=16,
                snapshot_every=self.EVERY,
                snapshot_dir=str(tmp_path / "snaps"),
            )
            for seed in (11, 12)
        ]
        clean = run_cells(
            [
                dataclasses.replace(cell, snapshot_every=0, snapshot_dir=None)
                for cell in cells
            ],
            jobs=1,
        )
        _arm(
            monkeypatch, tmp_path,
            mode="kill", rate=1.0, times=1, max_total=1,
            kill_at_demand=self.KILL_AT,
        )
        lines = []
        results = run_cells(cells, jobs=2, progress=lines.append)
        assert results == clean
        assert any("rebuilding" in line for line in lines)
        assert os.listdir(str(tmp_path / "snaps")) == []

    def test_armed_kill_does_not_leak_into_next_cell(self, monkeypatch, tmp_path):
        """A kill armed past a short cell's lifetime must not survive
        into the next cell run by the same worker."""
        from repro.engine import interrupt

        _arm(
            monkeypatch, tmp_path,
            mode="kill", rate=1.0, times=1, max_total=1,
            kill_at_demand=10_000_000,  # far past any cell's lifetime
        )
        cells = _grid()
        results = run_cells(cells, jobs=1, policy=FailurePolicy())
        monkeypatch.delenv(FAULTS_ENV)
        assert results == run_cells(cells, jobs=1)
        assert interrupt.armed_kill_at() is None
