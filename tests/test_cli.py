"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["fig6"])
        assert args.experiment == "fig6"
        assert not args.quick

    def test_quick_flag(self):
        args = build_parser().parse_args(["table1", "--quick"])
        assert args.quick

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "toss-up interval" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "storage bits per page" in out


class TestReportCommand:
    def test_report_to_stdout(self, capsys, monkeypatch):
        # Patch the report builder so the CLI test stays fast; the
        # builder itself is covered in test_timeline_report.py.
        import repro.analysis.report as report_module

        monkeypatch.setattr(
            report_module, "build_report", lambda setup: "# stub report\n"
        )
        assert main(["report", "--quick"]) == 0
        assert "# stub report" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, monkeypatch):
        import repro.analysis.report as report_module

        monkeypatch.setattr(
            report_module, "build_report", lambda setup: "# stub report\n"
        )
        path = str(tmp_path / "out.md")
        assert main(["report", "--quick", "--output", path]) == 0
        assert open(path).read().startswith("# stub report")
