"""Tests for repro.units."""

import pytest

from repro import units


class TestBandwidth:
    def test_mbps_is_decimal(self):
        assert units.mbps_to_bytes_per_second(1.0) == 1_000_000

    def test_zero_allowed(self):
        assert units.mbps_to_bytes_per_second(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.mbps_to_bytes_per_second(-1.0)


class TestYears:
    def test_roundtrip(self):
        assert units.seconds_to_years(units.years_to_seconds(3.5)) == pytest.approx(3.5)

    def test_one_year_seconds(self):
        assert units.years_to_seconds(1.0) == pytest.approx(31_557_600.0)


class TestFormatDuration:
    def test_seconds(self):
        assert units.format_duration(98.0) == "98.0 s"

    def test_minutes(self):
        assert units.format_duration(600.0) == "10.0 min"

    def test_hours(self):
        assert units.format_duration(7200.0) == "2.0 h"

    def test_days(self):
        assert units.format_duration(10 * units.SECONDS_PER_DAY) == "10.0 days"

    def test_years(self):
        assert "years" in units.format_duration(2.8 * units.SECONDS_PER_YEAR)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_duration(-1.0)


class TestFormatSize:
    def test_bytes(self):
        assert units.format_size(100) == "100 B"

    def test_kib(self):
        assert units.format_size(4096) == "4.0 KiB"

    def test_gib(self):
        assert units.format_size(32 * units.GIB) == "32.0 GiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_size(-1)
