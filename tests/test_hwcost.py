"""Tests for the hardware cost models (paper Section 5.4)."""

import pytest

from repro.config import PAPER_PCM, TWLConfig
from repro.errors import ConfigError
from repro.hwcost.gates import (
    adder_gates,
    comparator_gates,
    feistel_rng_gates,
    mux_gates,
    register_gates,
    sequential_divider_gates,
)
from repro.hwcost.storage import (
    scheme_storage_bits,
    twl_storage_bits_per_page,
    twl_storage_overhead,
)
from repro.hwcost.synthesis import twl_design_overhead


class TestGatePrimitives:
    def test_linear_in_width(self):
        assert adder_gates(16) == 2 * adder_gates(8)
        assert comparator_gates(16) == 2 * comparator_gates(8)
        assert register_gates(10) == 60

    def test_mux_inputs(self):
        assert mux_gates(8, inputs=4) == 3 * mux_gates(8, inputs=2)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            adder_gates(0)

    def test_divider_dominated_by_registers_and_adder(self):
        total = sequential_divider_gates(27)
        assert total > register_gates(54)

    def test_feistel_under_paper_budget(self):
        # "an 8-bit width Feistel Network ... costs less than 128 gates".
        assert feistel_rng_gates(bits=8) < 128

    def test_feistel_rejects_odd_width(self):
        with pytest.raises(ValueError):
            feistel_rng_gates(bits=7)


class TestStorage:
    def test_paper_bits_per_page(self):
        # 7 (WCT) + 27 (ET) + 23 (RT) + 23 (SWPT) = 80 bits per page.
        assert twl_storage_bits_per_page(PAPER_PCM, TWLConfig()) == 80

    def test_paper_overhead(self):
        overhead = twl_storage_overhead(PAPER_PCM, TWLConfig())
        assert overhead == pytest.approx(2.5e-3, rel=0.05)

    def test_scales_with_array_size(self):
        from repro.config import PCMConfig

        small = PCMConfig(capacity_bytes=1024 * 4096)
        assert twl_storage_bits_per_page(small, TWLConfig()) < 80

    def test_scheme_storage_shapes(self):
        for scheme in ("nowl", "startgap", "sr", "wrl", "bwl", "twl"):
            bits = scheme_storage_bits(scheme)
            assert all(v >= 0 for v in bits.values())
        assert scheme_storage_bits("nowl") == {}

    def test_twl_tables_complete(self):
        bits = scheme_storage_bits("twl")
        assert set(bits) == {
            "remap_table",
            "endurance_table",
            "pair_table",
            "write_counter_table",
        }

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            scheme_storage_bits("mystery")

    def test_rejects_bad_endurance_bits(self):
        with pytest.raises(ConfigError):
            twl_storage_bits_per_page(PAPER_PCM, TWLConfig(), endurance_bits=0)


class TestSynthesisReport:
    def test_report_near_paper_numbers(self):
        report = twl_design_overhead()
        assert report.storage_bits_per_page == 80
        assert report.rng_gates < 128
        # "718 gates according to our synthesis results" for the rest.
        assert report.datapath_gates == pytest.approx(718, rel=0.15)
        # "840 logic gates are estimated for the total".
        assert report.total_gates == pytest.approx(840, rel=0.15)

    def test_breakdown_keys(self):
        breakdown = twl_design_overhead().breakdown()
        assert set(breakdown) == {
            "storage_bits_per_page",
            "storage_overhead",
            "rng_gates",
            "datapath_gates",
            "total_gates",
        }


class TestProtectionBits:
    def test_secded_classic_widths(self):
        from repro.hwcost import secded_check_bits

        assert secded_check_bits(8) == 5
        assert secded_check_bits(64) == 8
        assert secded_check_bits(23) == 6
        assert secded_check_bits(7) == 5
        assert secded_check_bits(27) == 7

    def test_per_entry_costs(self):
        from repro.errors import ConfigError
        from repro.hwcost import protection_bits_per_entry

        assert protection_bits_per_entry(23, "none") == 0
        assert protection_bits_per_entry(23, "parity") == 1
        assert protection_bits_per_entry(23, "secded") == 6
        import pytest

        with pytest.raises(ConfigError):
            protection_bits_per_entry(23, "crc")

    def test_geometry_consistent_with_storage_totals(self):
        from repro.hwcost import scheme_storage_bits, scheme_table_geometry

        for scheme in ("nowl", "startgap", "sr", "wrl", "bwl", "twl_swp"):
            totals = scheme_storage_bits(scheme)
            geometry = scheme_table_geometry(scheme)
            assert set(totals) == set(geometry)
            for structure, (entries, bits) in geometry.items():
                assert entries * bits == totals[structure]

    def test_scheme_protection_overhead_ordering(self):
        from repro.hwcost import protection_storage_overhead

        none = protection_storage_overhead("twl_swp", "none")
        parity = protection_storage_overhead("twl_swp", "parity")
        secded = protection_storage_overhead("twl_swp", "secded")
        assert none == 0.0
        assert 0.0 < parity < secded
        # Parity on TWL's four per-page tables: 4 extra bits / 4 KB page.
        assert parity == 4 / (4096 * 8)
