"""Tests for the retirement scheme."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pcm.array import PCMArray
from repro.wearlevel.retirement import RetirementConfig, RetirementWearLeveling


def _make(n=64, endurance=1000, **overrides):
    array = PCMArray.uniform(n, endurance)
    defaults = dict(spare_fraction=0.125, margin_fraction=0.1,
                    estimate_sigma_fraction=0.0)
    defaults.update(overrides)
    return array, RetirementWearLeveling(
        array, config=RetirementConfig(**defaults), seed=3
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetirementConfig(spare_fraction=0.0)
        with pytest.raises(ConfigError):
            RetirementConfig(margin_fraction=1.0)
        with pytest.raises(ConfigError):
            RetirementConfig(estimate_sigma_fraction=0.6)


class TestAddressSpace:
    def test_spares_reduce_logical_space(self):
        _, scheme = _make(n=64)
        assert scheme.logical_pages == 56
        assert scheme.spares_remaining() == 8

    def test_identity_before_retirements(self):
        _, scheme = _make()
        assert scheme.translate(5) == 5


class TestRetirement:
    def test_frame_retires_before_true_death(self):
        # Perfect estimates: the hammered frame must never reach its
        # endurance; the page migrates to a spare first.
        array, scheme = _make(endurance=1000)
        for _ in range(950):
            scheme.write(0)
        assert not array.has_failure
        assert scheme.retired_frames >= 1
        assert scheme.translate(0) != 0
        assert array.page_writes(0) < 1000

    def test_retired_frame_stays_idle(self):
        array, scheme = _make(endurance=500)
        for _ in range(460):
            scheme.write(0)
        frame_writes_after_retire = array.page_writes(0)
        for _ in range(200):
            scheme.write(0)
        assert array.page_writes(0) == frame_writes_after_retire

    def test_migration_costs_one_write(self):
        array, scheme = _make(endurance=500)
        for _ in range(1000):
            scheme.write(0)
            if scheme.retired_frames == 1:
                break
        assert scheme.swap_writes == scheme.retired_frames

    def test_spare_pool_exhaustion_then_death(self):
        array, scheme = _make(n=16, endurance=200)
        while not array.has_failure:
            scheme.write(0)
        assert scheme.spare_pool_exhausted
        # The hammered page consumed its frame plus every spare.
        assert scheme.retired_frames == 2  # 12.5% of 16 = 2 spares
        assert scheme.demand_writes > 3 * 180

    def test_mapping_bijective_after_retirements(self):
        array, scheme = _make(n=32, endurance=300)
        for step in range(2000):
            scheme.write(step % scheme.logical_pages)
            if array.has_failure:
                break
        scheme.remap.validate()

    def test_stats_keys(self):
        _, scheme = _make()
        scheme.write(0)
        stats = scheme.stats()
        assert "retired_frames" in stats
        assert "spares_remaining" in stats


class TestEstimateNoise:
    def test_optimistic_estimate_kills_early(self):
        # Huge estimate noise with a thin margin: some frame's estimate
        # exceeds its true endurance by more than the margin and the
        # device dies despite retirement.
        array, scheme = _make(
            n=64,
            endurance=500,
            margin_fraction=0.02,
            estimate_sigma_fraction=0.3,
        )
        for step in range(200_000):
            scheme.write(step % scheme.logical_pages)
            if array.has_failure:
                break
        assert array.has_failure

    def test_wide_margin_survives_noise(self):
        array, scheme = _make(
            n=64,
            endurance=500,
            margin_fraction=0.45,
            estimate_sigma_fraction=0.05,
        )
        for _ in range(3000):
            scheme.write(0)
            if array.has_failure:
                break
        assert not array.has_failure or scheme.spare_pool_exhausted


class TestSparePoolExhaustionEdge:
    """Behaviour at and beyond the moment the spare pool runs dry."""

    def test_exhaustion_flag_flips_exactly_once_pool_is_empty(self):
        array, scheme = _make(n=16, endurance=200)
        while not scheme.spare_pool_exhausted:
            scheme.write(0)
        assert scheme.spares_remaining() == 0
        assert not array.has_failure  # flag precedes the actual death

    def test_no_retirement_after_exhaustion(self):
        array, scheme = _make(n=16, endurance=200)
        while not scheme.spare_pool_exhausted:
            scheme.write(0)
        retired = scheme.retired_frames
        swaps = scheme.swap_writes
        while not array.has_failure:
            scheme.write(0)
        # The hammered frame rides to true death without further
        # migrations or swap-write accounting drift.
        assert scheme.retired_frames == retired
        assert scheme.swap_writes == swaps

    def test_other_pages_survive_exhaustion(self):
        array, scheme = _make(n=16, endurance=200)
        while not scheme.spare_pool_exhausted:
            scheme.write(0)
        scheme.write(1)
        assert not array.has_failure
        assert scheme.translate(1) != scheme.translate(0)

    def test_stats_reflect_exhaustion(self):
        _, scheme = _make(n=16, endurance=200)
        while not scheme.spare_pool_exhausted:
            scheme.write(0)
        stats = scheme.stats()
        assert stats["spares_remaining"] == 0.0
        assert stats["retired_frames"] == float(scheme.retired_frames)


class TestEstimateErrorRace:
    """Lifetime is a race between the margin and the worst estimate."""

    def test_death_frame_estimate_overshot_margin(self):
        # When noise kills the device early, the frame that died must be
        # one whose estimate exceeded its true endurance by more than
        # the margin absorbed — the mechanism, not just the outcome.
        array, scheme = _make(
            n=64,
            endurance=500,
            margin_fraction=0.02,
            estimate_sigma_fraction=0.3,
        )
        for step in range(200_000):
            scheme.write(step % scheme.logical_pages)
            if array.has_failure:
                break
        assert array.has_failure
        frame = array.first_failure.physical_page
        assert scheme._retire_at_list[frame] >= array.endurance[frame]

    def test_perfect_estimates_never_die_before_exhaustion(self):
        array, scheme = _make(
            n=32, endurance=300, estimate_sigma_fraction=0.0
        )
        for step in range(100_000):
            scheme.write(step % scheme.logical_pages)
            if array.has_failure:
                break
        if array.has_failure:
            assert scheme.spare_pool_exhausted

    def test_pessimistic_estimates_only_waste_spares(self):
        # Uniformly pessimistic estimates retire frames early (draining
        # the pool faster) but can never cause a premature death.
        array, scheme = _make(n=32, endurance=300)
        scheme._retire_at_list = [
            max(1, at - 50) for at in scheme._retire_at_list
        ]
        for step in range(50_000):
            scheme.write(step % scheme.logical_pages)
            if array.has_failure:
                break
        assert not array.has_failure or scheme.spare_pool_exhausted
