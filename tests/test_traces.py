"""Tests for trace containers and synthetic generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.traces.request import MemoryRequest, OP_READ, OP_WRITE
from repro.traces.synth import (
    concentration_of_alpha,
    make_sequential_trace,
    make_single_address_trace,
    make_uniform_trace,
    make_zipf_trace,
    zipf_alpha_for_concentration,
    zipf_weights,
)
from repro.traces.trace import Trace


class TestMemoryRequest:
    def test_write_flag(self):
        assert MemoryRequest(OP_WRITE, 5).is_write
        assert not MemoryRequest(OP_READ, 5).is_write

    def test_op_name(self):
        assert MemoryRequest(OP_READ, 0).op_name == "read"

    def test_rejects_bad_op(self):
        with pytest.raises(ValueError):
            MemoryRequest(7, 0)

    def test_rejects_negative_page(self):
        with pytest.raises(ValueError):
            MemoryRequest(OP_WRITE, -1)


class TestTrace:
    def test_writes_only_constructor(self):
        trace = Trace.writes_only([1, 2, 2, 3])
        assert trace.n_requests == 4
        assert trace.n_writes == 4
        assert trace.write_fraction == 1.0
        assert trace.footprint_pages == 3

    def test_from_requests(self):
        requests = [MemoryRequest(OP_WRITE, 1), MemoryRequest(OP_READ, 2)]
        trace = Trace.from_requests(requests)
        assert trace.n_writes == 1
        assert list(trace.write_pages()) == [1]

    def test_histogram(self):
        trace = Trace.writes_only([0, 0, 3])
        histogram = trace.write_histogram(4)
        assert list(histogram) == [2, 0, 0, 1]

    def test_histogram_rejects_small_space(self):
        trace = Trace.writes_only([0, 5])
        with pytest.raises(TraceError):
            trace.write_histogram(4)

    def test_bandwidth_conversion(self):
        trace = Trace.writes_only([0], write_bandwidth_mbps=100.0)
        assert trace.write_bandwidth_bytes == 100e6

    def test_bandwidth_none(self):
        assert Trace.writes_only([0]).write_bandwidth_bytes is None

    def test_requests_iterator(self):
        trace = Trace.writes_only([4, 5])
        requests = list(trace.requests())
        assert all(r.is_write for r in requests)
        assert [r.logical_page for r in requests] == [4, 5]

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            Trace(np.array([], dtype=np.uint8), np.array([], dtype=np.int64))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(TraceError):
            Trace(np.array([1], dtype=np.uint8), np.array([1, 2], dtype=np.int64))

    def test_rejects_bad_ops(self):
        with pytest.raises(TraceError):
            Trace(np.array([7], dtype=np.uint8), np.array([1], dtype=np.int64))


class TestZipf:
    def test_weights_normalized(self):
        weights = zipf_weights(100, 0.8)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 0).all()

    def test_alpha_zero_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_concentration_roundtrip(self):
        for target in (1.5, 5.0, 30.0, 58.3):
            alpha = zipf_alpha_for_concentration(1024, target)
            assert concentration_of_alpha(1024, alpha) == pytest.approx(target, rel=1e-3)

    def test_concentration_bounds(self):
        with pytest.raises(TraceError):
            zipf_alpha_for_concentration(100, 0.5)
        with pytest.raises(TraceError):
            zipf_alpha_for_concentration(100, 100.0)

    @given(st.floats(min_value=1.1, max_value=50.0))
    @settings(max_examples=30, deadline=None)
    def test_inversion_property(self, concentration):
        alpha = zipf_alpha_for_concentration(256, concentration)
        assert concentration_of_alpha(256, alpha) == pytest.approx(
            concentration, rel=1e-3
        )


class TestGenerators:
    def test_zipf_trace_shape(self, rng):
        trace = make_zipf_trace(64, 5000, 0.8, rng)
        assert trace.n_writes == 5000
        assert trace.max_page < 64

    def test_zipf_trace_concentration(self, rng):
        trace = make_zipf_trace(64, 60_000, 0.9, rng)
        histogram = trace.write_histogram(64)
        expected = concentration_of_alpha(64, 0.9) / 64
        assert histogram.max() / trace.n_writes == pytest.approx(expected, rel=0.15)

    def test_zipf_with_reads(self, rng):
        trace = make_zipf_trace(64, 3000, 0.5, rng, write_fraction=0.5)
        assert trace.write_fraction == pytest.approx(0.5, abs=0.02)

    def test_uniform_trace(self, rng):
        trace = make_uniform_trace(32, 6400, rng)
        histogram = trace.write_histogram(32)
        assert histogram.min() > 100

    def test_sequential_trace(self):
        trace = make_sequential_trace(8, 20, start=6)
        assert list(trace.pages[:4]) == [6, 7, 0, 1]

    def test_single_address_trace(self):
        trace = make_single_address_trace(3, 10)
        assert (trace.pages == 3).all()

    def test_rejects_zero_writes(self, rng):
        with pytest.raises(TraceError):
            make_uniform_trace(8, 0, rng)
        with pytest.raises(TraceError):
            make_sequential_trace(8, 0)
        with pytest.raises(TraceError):
            make_single_address_trace(0, 0)
