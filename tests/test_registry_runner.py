"""Tests for the scheme registry and the experiment runner helpers."""

import pytest

from repro.config import ScaledArrayConfig, TWLConfig
from repro.core.twl import TossUpWearLeveling
from repro.errors import ConfigError
from repro.pcm.array import PCMArray
from repro.pcm.endurance import expected_extreme_minimum
from repro.sim.runner import build_array, measure_attack_lifetime, measure_trace_lifetime
from repro.traces.synth import make_sequential_trace
from repro.wearlevel.registry import make_scheme, scheme_names


class TestRegistry:
    def test_all_names_constructible(self):
        for name in scheme_names():
            array = PCMArray.uniform(64, 10_000)
            scheme = make_scheme(name, array, seed=1)
            assert scheme.write(0) >= 1

    def test_twl_alias_is_swp(self):
        array = PCMArray.uniform(16, 1000)
        scheme = make_scheme("twl", array, seed=1)
        assert isinstance(scheme, TossUpWearLeveling)
        assert scheme.config.pairing == "swp"

    def test_twl_variants_get_their_pairing(self):
        for name, pairing in (("twl_swp", "swp"), ("twl_ap", "ap"), ("twl_random", "random")):
            array = PCMArray.uniform(16, 1000)
            scheme = make_scheme(name, array, seed=1)
            assert scheme.config.pairing == pairing

    def test_twl_config_pairing_coerced(self):
        # Passing a mismatched config to a pairing-specific factory gets
        # the factory's pairing, keeping the registry labels truthful.
        array = PCMArray.uniform(16, 1000)
        scheme = make_scheme("twl_ap", array, seed=1, config=TWLConfig(pairing="swp"))
        assert scheme.config.pairing == "ap"

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            make_scheme("none", PCMArray.uniform(4, 10))


class TestBuildArray:
    def test_tail_faithful_default(self, small_scaled):
        array = build_array(small_scaled)
        assert array.n_pages == small_scaled.n_pages
        expected_min = expected_extreme_minimum(
            small_scaled.reference.n_pages,
            small_scaled.endurance_mean,
            small_scaled.endurance_mean * small_scaled.endurance_sigma_fraction,
        )
        assert array.endurance.min() == pytest.approx(expected_min, rel=0.05)

    def test_plain_sampling(self):
        scaled = ScaledArrayConfig(n_pages=128, endurance_mean=1536.0, tail_faithful=False)
        array = build_array(scaled)
        # Without tail pinning the minimum of 128 draws stays well above
        # the 8.4M-population minimum (~0.42 of the mean).
        assert array.endurance.min() > 0.5 * scaled.endurance_mean

    def test_deterministic_per_seed(self, small_scaled):
        a = build_array(small_scaled)
        b = build_array(small_scaled)
        assert (a.endurance == b.endurance).all()


class TestMeasureHelpers:
    def test_attack_lifetime(self, small_scaled):
        result = measure_attack_lifetime("nowl", "repeat", scaled=small_scaled)
        assert result.failed
        assert result.scheme == "nowl"
        assert result.workload == "repeat"

    def test_trace_lifetime(self, small_scaled):
        trace = make_sequential_trace(small_scaled.n_pages, 5000)
        result = measure_trace_lifetime("sr", trace, scaled=small_scaled)
        assert result.failed
        assert 0.2 < result.lifetime_fraction < 0.6

    def test_scheme_kwargs_forwarded(self, small_scaled):
        config = TWLConfig(toss_up_interval=4)
        result = measure_attack_lifetime(
            "twl_swp",
            "repeat",
            scaled=small_scaled,
            scheme_kwargs={"config": config},
        )
        assert result.failed

    def test_startgap_logical_space_respected(self, small_scaled):
        # Start-Gap exposes one page less; the attack must stay inside.
        result = measure_attack_lifetime("startgap", "scan", scaled=small_scaled)
        assert result.failed
