"""Soft-error injection, invariant checking, and self-healing tests.

Covers the resilience tentpole end to end: deterministic scheduling,
the protection semantics (silent / parity scrub / SECDED), the
batch-identity contract under nonzero fault rates, the runtime
invariant checker catching planted corruption, the graceful-degradation
fail-safes, and the exec-layer plumbing (cells, fingerprints, cache).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ScaledArrayConfig, SoftErrorConfig
from repro.engine import EngineObserver, InvariantCheckObserver, SimulationEngine
from repro.errors import ConfigError, InvariantViolation
from repro.exec.cells import attack_cell, run_cell
from repro.exec.hashing import cell_fingerprint
from repro.pcm.array import PCMArray
from repro.pcm.softerrors import (
    ACTION_CORRECTED,
    ACTION_FAIL_SAFE,
    ACTION_REPAIRED,
    ACTION_SILENT,
    BitTarget,
    SoftErrorInjector,
)
from repro.sim.cache import deserialize_result, serialize_result
from repro.sim.drivers import AttackDriver
from repro.sim.lifetime import run_to_failure
from repro.sim.runner import measure_attack_lifetime
from repro.attacks.registry import make_attack
from repro.wearlevel.registry import make_scheme

_SCALED = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)


def _faulted(
    scheme_name,
    rate=1e-3,
    protection="none",
    targets=(),
    check=False,
    batch_size=1,
    attack="random",
):
    return measure_attack_lifetime(
        scheme_name,
        attack,
        scaled=_SCALED,
        seed=7,
        soft_errors=SoftErrorConfig(
            rate=rate, seed=7, targets=tuple(targets), protection=protection
        ),
        check_invariants=check,
        batch_size=batch_size,
    )


class TestConfig:
    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            SoftErrorConfig(rate=-0.1)
        with pytest.raises(ConfigError):
            SoftErrorConfig(rate=1.5)

    def test_protection_names(self):
        with pytest.raises(ConfigError):
            SoftErrorConfig(protection="hamming")

    def test_target_names(self):
        with pytest.raises(ConfigError):
            SoftErrorConfig(targets=("",))

    def test_bit_target_geometry(self):
        with pytest.raises(ConfigError):
            BitTarget("x", 0, 8, lambda e: 0, lambda e, v: None)
        with pytest.raises(ConfigError):
            BitTarget("x", 8, 0, lambda e: 0, lambda e, v: None)

    def test_unknown_target_lists_surface(self):
        with pytest.raises(ConfigError, match="bogus"):
            _faulted("twl_swp", targets=("bogus",))


class TestScheduling:
    def _injector(self, rate=1e-2):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme("twl_swp", array, seed=7)
        return SoftErrorInjector(
            scheme, SoftErrorConfig(rate=rate, seed=7)
        )

    def test_deterministic_schedule_and_events(self):
        first = self._injector()
        second = self._injector()
        for demand in range(0, 5000, 37):
            first.deliver(demand)
            second.deliver(demand)
        assert first.events == second.events
        assert len(first.events) > 10

    def test_gap_always_positive(self):
        injector = self._injector(rate=1.0)
        injector.deliver(3)
        indices = [event.demand_index for event in injector.events]
        assert indices == [1, 2, 3]

    def test_inactive_without_surface(self):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme("nowl", array, seed=7)
        injector = SoftErrorInjector(scheme, SoftErrorConfig(rate=0.5, seed=7))
        assert not injector.active
        with pytest.raises(ConfigError):
            injector.demand_until_next(0)

    def test_summary_keys_are_fixed_and_sorted(self):
        injector = self._injector()
        assert list(injector.summary()) == sorted(injector.summary())
        assert set(injector.summary()) == {
            "corrected", "detected", "fail_safe", "injected",
            "repaired", "silent",
        }


class TestProtectionSemantics:
    def test_silent_flips_change_the_outcome(self):
        clean = measure_attack_lifetime(
            "twl_swp", "random", scaled=_SCALED, seed=7
        )
        silent = _faulted("twl_swp", protection="none")
        counters = silent.soft_errors
        assert counters["injected"] > 0
        assert counters["silent"] == counters["injected"]
        # Persistent RT/WCT corruption must perturb the lifetime.
        assert silent.demand_writes != clean.demand_writes

    def test_secded_is_bit_identical_to_clean(self):
        clean = measure_attack_lifetime(
            "twl_swp", "random", scaled=_SCALED, seed=7
        )
        protected = _faulted("twl_swp", protection="secded", check=True)
        assert protected.soft_errors["corrected"] > 0
        assert protected.soft_errors["corrected"] == (
            protected.soft_errors["injected"]
        )
        # Everything except the counter field matches the clean run.
        assert dataclasses.replace(protected, soft_errors=None) == clean

    def test_parity_scrubs_every_flip(self):
        result = _faulted("twl_swp", protection="parity", check=True)
        counters = result.soft_errors
        assert counters["injected"] > 0
        assert counters["silent"] == 0
        assert counters["injected"] == (
            counters["repaired"] + counters["fail_safe"] + counters["detected"]
        )

    def test_parity_fail_safe_on_repairless_target(self):
        # StartGap's registers expose no repair hook, so parity must
        # drive the scheme's fail-safe degradation path.
        result = _faulted("startgap", protection="parity", check=True)
        assert result.soft_errors["fail_safe"] > 0
        assert result.soft_errors["repaired"] == 0

    def test_fail_safe_marks_scheme_degraded(self):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme("startgap", array, seed=7)
        injector = SoftErrorInjector(
            scheme, SoftErrorConfig(rate=1.0, seed=7, protection="parity")
        )
        assert not scheme.fault_degraded
        injector.deliver(1)
        assert scheme.fault_degraded
        assert injector.events[0].action == ACTION_FAIL_SAFE

    def test_custom_target_actions(self):
        class Victim:
            def __init__(self):
                self.value = 0
                self.degraded = False

            def fault_surface(self):
                return {
                    "reg": BitTarget(
                        name="reg",
                        n_entries=1,
                        entry_bits=8,
                        read=lambda entry: self.value,
                        write=lambda entry, value: setattr(
                            self, "value", value
                        ),
                        fail_safe=lambda: setattr(self, "degraded", True),
                    )
                }

        victim = Victim()
        injector = SoftErrorInjector(
            victim, SoftErrorConfig(rate=1.0, seed=7, protection="secded")
        )
        injector.deliver(1)
        assert victim.value == 0  # corrected before landing
        assert injector.events[0].action == ACTION_CORRECTED

        victim = Victim()
        injector = SoftErrorInjector(
            victim, SoftErrorConfig(rate=1.0, seed=7, protection="none")
        )
        injector.deliver(1)
        assert victim.value != 0
        assert injector.events[0].action == ACTION_SILENT

        victim = Victim()
        injector = SoftErrorInjector(
            victim, SoftErrorConfig(rate=1.0, seed=7, protection="parity")
        )
        injector.deliver(1)
        assert victim.degraded
        assert injector.events[0].action == ACTION_FAIL_SAFE


class TestBatchIdentityUnderFaults:
    @pytest.mark.parametrize("protection", ["none", "parity", "secded"])
    @pytest.mark.parametrize("scheme_name", ["twl_swp", "wrl", "startgap"])
    def test_batched_matches_serial(self, scheme_name, protection):
        serial = _faulted(scheme_name, protection=protection)
        batched = _faulted(scheme_name, protection=protection, batch_size=64)
        assert batched == serial

    def test_wct_only_corruption_batch_identity(self):
        serial = _faulted("twl_swp", targets=("wct",))
        batched = _faulted("twl_swp", targets=("wct",), batch_size=64)
        assert batched == serial
        assert serial.soft_errors["injected"] > 0


class TestInvariantChecker:
    def _engine(self, observers):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme("twl_swp", array, seed=7)
        attack = make_attack("random", scheme.logical_pages, seed=7)
        return scheme, SimulationEngine(
            scheme, AttackDriver(attack), observers=observers
        )

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            InvariantCheckObserver(every=0)

    def test_clean_run_passes(self):
        checker = InvariantCheckObserver()
        _, engine = self._engine([checker])
        engine.run(2000, require_failure=False)
        assert checker.checks > 0

    def test_silent_rt_corruption_is_detected(self):
        with pytest.raises(InvariantViolation) as info:
            _faulted("twl_swp", targets=("rt",), check=True)
        assert info.value.table == "rt"
        assert info.value.scheme == "twl"
        assert info.value.step >= 0

    def test_parity_repaired_run_stays_consistent(self):
        result = _faulted("twl_swp", protection="parity", check=True)
        assert result.soft_errors["injected"] > 0

    def _violation_from_mutator(self, mutate):
        class Mutator(EngineObserver):
            critical = True  # never detach; fire exactly once
            fired = False

            def on_batch(self, snapshot):
                if not Mutator.fired:
                    Mutator.fired = True
                    mutate(snapshot.scheme)

        checker = InvariantCheckObserver()
        _, engine = self._engine([Mutator(), checker])
        with pytest.raises(InvariantViolation) as info:
            engine.run(2000, require_failure=False)
        return info.value

    def test_accounting_drift_is_detected(self):
        violation = self._violation_from_mutator(
            lambda scheme: scheme.array.write(0)
        )
        assert violation.table == "accounting"

    def test_et_mutation_is_detected(self):
        def mutate(scheme):
            scheme.endurance_table._values[3] += 1

        violation = self._violation_from_mutator(mutate)
        assert violation.table == "et"

    def test_swpt_corruption_is_detected(self):
        def mutate(scheme):
            table = scheme.pair_table
            original = table.raw_partner(0)
            table.poke_partner(0, 1 if original != 1 else 2)

        violation = self._violation_from_mutator(mutate)
        assert violation.table == "swpt"

    def test_violation_is_structured(self):
        error = InvariantViolation("twl", 12, "rt", ["LA 1 broken"])
        assert error.scheme == "twl"
        assert error.step == 12
        assert error.table == "rt"
        assert error.details == ["LA 1 broken"]
        assert "step 12" in str(error)


class TestArrayBackedFaultSurface:
    """BitTarget peek/poke must hit the canonical numpy arrays live.

    After the structure-of-arrays refactor the tables' scalar accessors
    are views over flat arrays; these tests pin the contract that the
    fault surface's closures read and write that same live storage (a
    stale-copy regression would make injection silently inert).
    """

    def _scheme(self):
        array = PCMArray.uniform(64, 768)
        return make_scheme("twl_swp", array, seed=7)

    def test_rt_peek_poke_round_trips_through_canonical_array(self):
        scheme = self._scheme()
        rt = scheme.fault_surface()["rt"]
        rt.write(3, 5)
        assert rt.read(3) == 5
        assert int(scheme.remap.mapping_array()[3]) == 5
        scheme.remap.poke_entry(3, 9)
        assert rt.read(3) == 9

    def test_wct_peek_poke_round_trips_through_canonical_array(self):
        scheme = self._scheme()
        wct = scheme.fault_surface()["wct"]
        wct.write(5, 11)
        assert scheme.write_counters.value(5) == 11
        assert int(scheme.write_counters.values_array()[5]) == 11
        scheme.write_counters.poke(5, 3)
        assert wct.read(5) == 3

    def test_swpt_peek_poke_round_trips_through_canonical_array(self):
        scheme = self._scheme()
        swpt = scheme.fault_surface()["swpt"]
        swpt.write(0, 7)
        assert scheme.pair_table.raw_partner(0) == 7
        assert int(scheme.pair_table.partners_array()[0]) == 7
        scheme.pair_table.repair_entry(0)
        assert swpt.read(0) == scheme.pair_table.raw_partner(0)

    def test_poked_non_bijective_rt_is_caught_by_checker(self):
        scheme = self._scheme()
        attack = make_attack("random", scheme.logical_pages, seed=7)
        checker = InvariantCheckObserver(every=1)
        engine = SimulationEngine(
            scheme, AttackDriver(attack), observers=[checker], batch_size=16
        )
        # Duplicate one RT entry: the mapping is no longer a bijection.
        scheme.remap.poke_entry(0, scheme.remap.lookup(1))
        with pytest.raises(InvariantViolation) as info:
            engine.run(500, require_failure=False)
        assert info.value.table == "rt"

    @pytest.mark.parametrize("poke_value_offset", [0, 3])
    def test_wct_poke_above_interval_is_batch_identical(
        self, poke_value_offset
    ):
        # A counter at or above the interval disables the planner's
        # modular trigger prediction; the scalar fallback must stay
        # bit-identical to the serial path until the counter recovers.
        def run(batch_size):
            array = PCMArray.uniform(64, 768)
            scheme = make_scheme("twl_swp", array, seed=7)
            wct = scheme.write_counters
            wct.poke(4, wct.interval + poke_value_offset)
            attack = make_attack("random", scheme.logical_pages, seed=7)
            engine = SimulationEngine(
                scheme, AttackDriver(attack), batch_size=batch_size
            )
            engine.run(4000, require_failure=False)
            return array.write_counts(), scheme.stats()

        serial_counts, serial_stats = run(1)
        batched_counts, batched_stats = run(64)
        assert np.array_equal(batched_counts, serial_counts)
        assert batched_stats == serial_stats


class TestRepairPrimitives:
    def test_rt_repair_restores_from_inverse(self):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme("twl_swp", array, seed=7)
        remap = scheme.remap
        original = remap.raw_entry(3)
        remap.poke_entry(3, (original + 1) % 64)
        assert remap.consistency_errors()
        assert remap.repair_entry(3)
        assert remap.raw_entry(3) == original
        assert not remap.consistency_errors()

    def test_swpt_repair_restores_involution(self):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme("twl_swp", array, seed=7)
        table = scheme.pair_table
        original = table.raw_partner(0)
        table.poke_partner(0, 1 if original != 1 else 2)
        assert table.involution_errors()
        assert table.repair_entry(0)
        assert table.raw_partner(0) == original
        assert not table.involution_errors()

    def test_identity_fail_safe_resets_mapping(self):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme("twl_swp", array, seed=7)
        for step in range(500):
            scheme.write(step % scheme.logical_pages)
        scheme.fault_fail_safe()
        assert scheme.fault_degraded
        assert not scheme.remap.consistency_errors()
        assert all(
            scheme.remap.raw_entry(page) == page
            for page in range(scheme.array.n_pages)
        )


class TestExecPlumbing:
    def test_soft_errors_is_identity_bearing(self):
        clean = attack_cell("twl_swp", "random", scaled=_SCALED, seed=7)
        faulted = attack_cell(
            "twl_swp",
            "random",
            scaled=_SCALED,
            seed=7,
            soft_errors=SoftErrorConfig(rate=1e-3, seed=7),
        )
        assert cell_fingerprint(clean) != cell_fingerprint(faulted)

    def test_check_invariants_is_an_execution_knob(self):
        cell = attack_cell("twl_swp", "random", scaled=_SCALED, seed=7)
        checked = dataclasses.replace(cell, check_invariants=True)
        assert cell_fingerprint(cell) == cell_fingerprint(checked)

    def test_overheads_cells_reject_soft_errors(self):
        from repro.exec.cells import ExperimentCell

        with pytest.raises(ConfigError):
            ExperimentCell(
                kind="overheads",
                scheme="twl_swp",
                workload="canneal",
                scaled=_SCALED,
                seed=7,
                trace_writes=100,
                drive_writes=100,
                soft_errors=SoftErrorConfig(rate=1e-3, seed=7),
            )

    def test_run_cell_carries_counters(self):
        cell = attack_cell(
            "twl_swp",
            "random",
            scaled=_SCALED,
            seed=7,
            soft_errors=SoftErrorConfig(rate=1e-3, seed=7, protection="parity"),
            check_invariants=True,
        )
        result = run_cell(cell)
        assert result.soft_errors["injected"] > 0
        direct = _faulted("twl_swp", protection="parity", check=True)
        assert result == direct

    def test_cache_round_trips_soft_errors(self):
        result = _faulted("twl_swp", protection="parity")
        assert deserialize_result(serialize_result(result)) == result
        clean = measure_attack_lifetime(
            "twl_swp", "random", scaled=_SCALED, seed=7
        )
        assert deserialize_result(serialize_result(clean)) == clean

    def test_fastforward_rejects_faults(self):
        with pytest.raises(ConfigError, match="fastforward"):
            measure_attack_lifetime(
                "twl_swp",
                "random",
                scaled=_SCALED,
                seed=7,
                fastforward=True,
                soft_errors=SoftErrorConfig(rate=1e-3, seed=7),
            )

    def test_nowl_reports_no_counters(self):
        result = _faulted("nowl")
        assert result.soft_errors is None


class TestSchemeSurfaces:
    @pytest.mark.parametrize(
        "scheme_name,expected",
        [
            ("twl_swp", {"rng", "rt", "swpt", "tossrng", "wct"}),
            ("wrl", {"rt", "wnt"}),
            ("bwl", {"rt"}),
            ("retire", {"rt"}),
            ("startgap", {"regs"}),
            ("nowl", set()),
        ],
    )
    def test_surface_targets(self, scheme_name, expected):
        array = PCMArray.uniform(64, 768)
        scheme = make_scheme(scheme_name, array, seed=7)
        assert set(scheme.fault_surface()) == expected

    @pytest.mark.parametrize(
        "scheme_name", ["twl_swp", "wrl", "bwl", "retire", "startgap"]
    )
    def test_lifetime_under_faults_per_scheme(self, scheme_name):
        result = _faulted(scheme_name, protection="parity", check=True)
        assert result.soft_errors["injected"] > 0
