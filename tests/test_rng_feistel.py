"""Tests for the Feistel network RNG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.rng.feistel import FeistelNetwork, FeistelRNG


class TestFeistelNetwork:
    def test_is_a_permutation(self):
        network = FeistelNetwork(bits=8, seed=7)
        outputs = network.permutation()
        assert sorted(outputs) == list(range(256))

    def test_decrypt_inverts_encrypt(self):
        network = FeistelNetwork(bits=8, seed=42)
        for value in range(256):
            assert network.decrypt(network.encrypt(value)) == value

    def test_different_seeds_differ(self):
        a = FeistelNetwork(bits=8, seed=1).permutation()
        b = FeistelNetwork(bits=8, seed=2).permutation()
        assert a != b

    def test_wide_network(self):
        network = FeistelNetwork(bits=16, seed=3)
        for value in (0, 1, 12345, 65535):
            encrypted = network.encrypt(value)
            assert 0 <= encrypted < 65536
            assert network.decrypt(encrypted) == value

    def test_rejects_odd_width(self):
        with pytest.raises(ConfigError):
            FeistelNetwork(bits=7)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigError):
            FeistelNetwork(bits=8, rounds=0)

    def test_rejects_out_of_domain(self):
        network = FeistelNetwork(bits=8)
        with pytest.raises(ValueError):
            network.encrypt(256)

    def test_explicit_keys_validated(self):
        with pytest.raises(ConfigError):
            FeistelNetwork(bits=8, keys=[1, 2, 3])  # wrong count for 4 rounds
        with pytest.raises(ConfigError):
            FeistelNetwork(bits=8, keys=[1, 2, 3, 999])  # key out of range

    def test_refuses_huge_materialization(self):
        with pytest.raises(ConfigError):
            FeistelNetwork(bits=22).permutation()

    @given(st.integers(min_value=0, max_value=65535), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, value, seed):
        network = FeistelNetwork(bits=16, seed=seed)
        assert network.decrypt(network.encrypt(value)) == value


class TestFeistelRNG:
    def test_full_period_epoch(self):
        generator = FeistelRNG(bits=8, seed=5)
        words = [generator.next_word() for _ in range(256)]
        assert sorted(words) == list(range(256))

    def test_key_rolls_between_epochs(self):
        generator = FeistelRNG(bits=8, seed=5)
        first = [generator.next_word() for _ in range(256)]
        second = [generator.next_word() for _ in range(256)]
        assert first != second
        assert sorted(second) == list(range(256))

    def test_next_unit_in_range(self):
        generator = FeistelRNG(bits=8, seed=9)
        for _ in range(512):
            value = generator.next_unit()
            assert 0.0 <= value < 1.0

    def test_next_below(self):
        generator = FeistelRNG(bits=8, seed=9)
        for _ in range(100):
            assert 0 <= generator.next_below(10) < 10

    def test_next_below_rejects_bad_bound(self):
        generator = FeistelRNG(bits=8)
        with pytest.raises(ValueError):
            generator.next_below(0)
        with pytest.raises(ValueError):
            generator.next_below(257)

    def test_iter_words(self):
        generator = FeistelRNG(bits=8, seed=1)
        assert len(list(generator.iter_words(10))) == 10

    def test_take_words_matches_next_word(self):
        serial = FeistelRNG(bits=8, seed=5)
        batched = FeistelRNG(bits=8, seed=5)
        expected = [serial.next_word() for _ in range(40)]
        assert batched.take_words(40).tolist() == expected

    def test_take_words_across_epoch_roll(self):
        # 600 words spans two key rolls of the 256-word epoch; the
        # batched gather must replicate them at the exact draw counts.
        serial = FeistelRNG(bits=8, seed=5)
        batched = FeistelRNG(bits=8, seed=5)
        expected = [serial.next_word() for _ in range(600)]
        got = []
        for chunk in (100, 200, 300):
            got.extend(batched.take_words(chunk).tolist())
        assert got == expected
        assert batched.next_word() == serial.next_word()

    def test_take_words_zero_and_interleaved(self):
        serial = FeistelRNG(bits=8, seed=2)
        batched = FeistelRNG(bits=8, seed=2)
        assert batched.take_words(0).size == 0
        expected = [serial.next_word() for _ in range(7)]
        got = batched.take_words(3).tolist()
        got.append(batched.next_word())
        got.extend(batched.take_words(3).tolist())
        assert got == expected

    def test_mean_is_unbiased(self):
        generator = FeistelRNG(bits=8, seed=3)
        mean = sum(generator.next_unit() for _ in range(2560)) / 2560
        assert abs(mean - 0.5) < 0.01  # full-period structure keeps it tight
