"""Tests for the determinism lint pass and the runtime sanitizer.

Covers ``repro.devtools.lint`` (rules TWL001–TWL010, pragma
suppression and staleness auditing, the JSON report schema, the
full-tree-clean invariant) and ``repro.devtools.sanitize`` (global-RNG
booby traps armed inside engine stepping and cell runs, disarmed
elsewhere).  The index pass and the cross-module state & effect rules
have their own dedicated suite in ``tests/test_project_index.py``.
"""

from __future__ import annotations

import dataclasses
import json
import random
import textwrap

import numpy as np
import pytest

from repro.attacks.registry import make_attack
from repro.config import ScaledArrayConfig
from repro.devtools import sanitize
from repro.devtools.lint import (
    RULES,
    Violation,
    check_classifications,
    check_field_classification,
    default_lint_root,
    iter_python_files,
    lint_paths,
    lint_source,
    module_name_for,
    run_lint,
    run_lint_report,
)
from repro.engine import BatchSnapshot, EngineObserver, SimulationEngine
from repro.errors import DeterminismViolation
from repro.exec import FailurePolicy, attack_cell, run_cell, run_cells
from repro.pcm.array import PCMArray
from repro.sim.drivers import AttackDriver
from repro.wearlevel.registry import make_scheme

SCALED = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)


def _lint(source: str, module: str = "repro.sim.example") -> list:
    """Lint dedented ``source`` as if it were the named module."""
    return lint_source(textwrap.dedent(source), path="<fixture>", module=module)


def _rules(violations) -> set:
    return {v.rule for v in violations}


class TestRuleTWL001Randomness:
    def test_random_module_call_flagged(self):
        out = _lint("import random\nx = random.random()\n")
        assert _rules(out) == {"TWL001"}

    def test_from_import_flagged(self):
        out = _lint("from random import randint\nx = randint(0, 5)\n")
        assert _rules(out) == {"TWL001"}

    def test_numpy_global_state_flagged(self):
        out = _lint("import numpy as np\nx = np.random.rand(3)\n")
        assert _rules(out) == {"TWL001"}

    def test_unseeded_default_rng_flagged(self):
        out = _lint("import numpy as np\nrng = np.random.default_rng()\n")
        assert _rules(out) == {"TWL001"}

    def test_seeded_default_rng_allowed(self):
        assert _lint("import numpy as np\nrng = np.random.default_rng(42)\n") == []

    def test_explicit_generator_allowed(self):
        source = """
            import numpy as np
            rng = np.random.Generator(np.random.PCG64(1))
        """
        assert _lint(source) == []

    def test_os_entropy_flagged(self):
        out = _lint("import os\nblob = os.urandom(16)\n")
        assert _rules(out) == {"TWL001"}

    def test_repro_rng_is_exempt(self):
        source = "import random\nx = random.random()\n"
        assert lint_source(source, module="repro.rng.streams") == []

    def test_pragma_with_reason_suppresses(self):
        source = (
            "import random\n"
            "x = random.random()  # twl: allow(TWL001) reason=test fixture\n"
        )
        assert _lint(source) == []

    def test_pragma_without_reason_does_not_suppress(self):
        source = "import random\nx = random.random()  # twl: allow(TWL001)\n"
        assert _rules(_lint(source)) == {"TWL001"}


class TestRuleTWL002Clocks:
    def test_time_time_flagged(self):
        out = _lint("import time\nt = time.time()\n")
        assert _rules(out) == {"TWL002"}

    def test_perf_counter_flagged(self):
        out = _lint("from time import perf_counter\nt = perf_counter()\n")
        assert _rules(out) == {"TWL002"}

    def test_datetime_now_flagged(self):
        out = _lint("import datetime\nt = datetime.datetime.now()\n")
        assert _rules(out) == {"TWL002"}

    def test_sleep_allowed(self):
        assert _lint("import time\ntime.sleep(0.01)\n") == []

    def test_repro_exec_is_exempt(self):
        source = "import time\nt = time.perf_counter()\n"
        assert lint_source(source, module="repro.exec.executor") == []


class TestRuleTWL003Classification:
    def test_clean_on_real_specs(self):
        assert check_classifications() == []

    def test_unclassified_field_flagged(self):
        @dataclasses.dataclass
        class Spec:
            seed: int = 0
            mystery: int = 0

        out = check_field_classification(
            Spec, frozenset({"seed"}), frozenset(), path="<fixture>"
        )
        assert _rules(out) == {"TWL003"}
        assert any("mystery" in v.message for v in out)

    def test_double_classified_field_flagged(self):
        @dataclasses.dataclass
        class Spec:
            seed: int = 0

        out = check_field_classification(
            Spec, frozenset({"seed"}), frozenset({"seed"}), path="<fixture>"
        )
        assert _rules(out) == {"TWL003"}

    def test_phantom_classification_flagged(self):
        @dataclasses.dataclass
        class Spec:
            seed: int = 0

        out = check_field_classification(
            Spec, frozenset({"seed", "ghost"}), frozenset(), path="<fixture>"
        )
        assert _rules(out) == {"TWL003"}


class TestRuleTWL004Ordering:
    MODULE = "repro.exec.hashing"

    def test_set_iteration_flagged(self):
        source = "for item in {1, 2, 3}:\n    pass\n"
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL004"}

    def test_dict_keys_iteration_flagged(self):
        source = "d = {}\nfor key in d.keys():\n    pass\n"
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL004"}

    def test_sorted_iteration_allowed(self):
        source = "d = {}\nfor key in sorted(d.keys()):\n    pass\n"
        assert lint_source(source, module=self.MODULE) == []

    def test_json_dump_without_sort_keys_flagged(self):
        source = "import json\ntext = json.dumps({})\n"
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL004"}

    def test_json_dump_with_sort_keys_allowed(self):
        source = "import json\ntext = json.dumps({}, sort_keys=True)\n"
        assert lint_source(source, module=self.MODULE) == []

    def test_rule_scoped_to_fingerprinted_modules(self):
        source = "d = {}\nfor key in d.keys():\n    pass\n"
        assert lint_source(source, module="repro.sim.runner") == []


class TestRuleTWL006ScalarHotLoop:
    MODULE = "repro.tables.example"

    def test_tolist_loop_flagged_in_hot_path(self):
        source = "def f(arr):\n    for x in arr.tolist():\n        pass\n"
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL006"}

    def test_enumerate_tolist_flagged(self):
        source = (
            "def f(arr):\n"
            "    for i, x in enumerate(arr.tolist()):\n"
            "        pass\n"
        )
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL006"}

    def test_comprehension_over_tolist_flagged(self):
        source = "def f(arr):\n    return [x + 1 for x in arr.tolist()]\n"
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL006"}

    def test_vectorized_code_clean(self):
        source = "def f(arr):\n    return arr + 1\n"
        assert lint_source(source, module=self.MODULE) == []

    def test_reasoned_pragma_suppresses(self):
        source = (
            "def f(arr):\n"
            "    for x in arr.tolist():  "
            "# twl: allow(TWL006) reason=exact scalar tail\n"
            "        pass\n"
        )
        assert lint_source(source, module=self.MODULE) == []

    def test_pragma_without_reason_does_not_suppress(self):
        source = (
            "def f(arr):\n"
            "    for x in arr.tolist():  # twl: allow(TWL006)\n"
            "        pass\n"
        )
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL006"}

    def test_rule_scoped_to_hot_path_modules(self):
        source = "def f(arr):\n    for x in arr.tolist():\n        pass\n"
        assert lint_source(source, module="repro.report.tables") == []

    def test_hot_path_tree_is_clean_or_pragmaed(self):
        import repro.core.twl as twl_module
        import repro.wearlevel.start_gap as sg_module

        from repro.devtools.lint import lint_file

        for module in (twl_module, sg_module):
            assert lint_file(module.__file__) == []


class TestRuleTWL007Materialization:
    MODULE = "repro.sim.example"

    def test_materialize_call_flagged_in_streaming_hot_path(self):
        source = "def f(stream):\n    return stream.materialize()\n"
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL007"}

    def test_write_page_list_flagged(self):
        source = "def f(trace):\n    return trace.write_page_list()\n"
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL007"}

    def test_load_trace_flagged(self):
        source = (
            "from repro.traces import load_trace\n"
            "def f(path):\n    return load_trace(path)\n"
        )
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL007"}

    def test_engine_modules_also_covered(self):
        source = "def f(stream):\n    return stream.materialize()\n"
        out = lint_source(source, module="repro.engine.core")
        assert _rules(out) == {"TWL007"}

    def test_chunked_iteration_clean(self):
        source = (
            "def f(stream):\n"
            "    for ops, pages in stream.chunks():\n"
            "        pass\n"
        )
        assert lint_source(source, module=self.MODULE) == []

    def test_rule_scoped_to_streaming_hot_paths(self):
        source = "def f(stream):\n    return stream.materialize()\n"
        assert lint_source(source, module="repro.traces.text_format") == []
        assert lint_source(source, module="repro.exec.cells") == []

    def test_reasoned_pragma_suppresses(self):
        source = (
            "def f(trace):\n"
            "    return trace.write_page_list()  "
            "# twl: allow(TWL007) reason=materialized adapter\n"
        )
        assert lint_source(source, module=self.MODULE) == []

    def test_pragma_without_reason_does_not_suppress(self):
        source = (
            "def f(trace):\n"
            "    return trace.write_page_list()  # twl: allow(TWL007)\n"
        )
        out = lint_source(source, module=self.MODULE)
        assert _rules(out) == {"TWL007"}


class TestRuleTWL005DunderAll:
    def test_undefined_name_flagged(self):
        out = _lint('__all__ = ["missing"]\n')
        assert _rules(out) == {"TWL005"}

    def test_duplicate_flagged(self):
        source = '__all__ = ["f", "f"]\ndef f():\n    pass\n'
        assert _rules(_lint(source)) == {"TWL005"}

    def test_missing_public_name_flagged(self):
        source = '__all__ = ["f"]\ndef f():\n    pass\ndef g():\n    pass\n'
        out = _lint(source)
        assert _rules(out) == {"TWL005"}
        assert any("g" in v.message for v in out)

    def test_consistent_all_clean(self):
        source = (
            '__all__ = ["f"]\n'
            "def f():\n    pass\n"
            "def _private():\n    pass\n"
        )
        assert _lint(source) == []


class TestInfrastructure:
    def test_module_name_for_resolves_package_path(self):
        assert module_name_for("src/repro/exec/hashing.py") == "repro.exec.hashing"

    def test_syntax_error_reported_not_raised(self):
        out = lint_source("def broken(:\n", path="<fixture>")
        assert len(out) == 1
        assert out[0].rule == "TWL000"

    def test_violation_format_has_rule_and_location(self):
        violation = Violation("x.py", 3, 7, "TWL001", "boom")
        assert violation.format() == "x.py:3:7: TWL001 boom"

    def test_rules_table_covers_all_rules(self):
        assert set(RULES) == {
            "TWL001",
            "TWL002",
            "TWL003",
            "TWL004",
            "TWL005",
            "TWL006",
            "TWL007",
            "TWL008",
            "TWL009",
            "TWL010",
        }


class TestRuleTWL010StalePragmas:
    def test_stale_pragma_flagged(self):
        out = _lint("x = 1  # twl: allow(TWL001) reason=nothing here\n")
        assert _rules(out) == {"TWL010"}
        assert "allow(TWL001)" in out[0].message

    def test_used_pragma_not_flagged(self):
        source = (
            "import random\n"
            "x = random.random()  # twl: allow(TWL001) reason=test fixture\n"
        )
        assert _lint(source) == []

    def test_reasonless_pragma_counts_as_used(self):
        # A reasonless pragma doesn't suppress (the finding still
        # reports), but it isn't *stale* either — the fix is to add a
        # reason, not to delete it.
        source = "import random\nx = random.random()  # twl: allow(TWL001)\n"
        assert _rules(_lint(source)) == {"TWL001"}

    def test_single_file_pass_skips_project_rule_pragmas(self):
        # TWL008/TWL009 only fire in the project pass; a single-file
        # pass can't tell whether their pragmas are earning their keep,
        # so it must not call them stale.
        out = _lint("x = 1  # twl: allow(TWL008) reason=set mirror\n")
        assert out == []

    def test_twl010_itself_suppressible_with_reason(self):
        source = "x = 1  # twl: allow(TWL001, TWL010) reason=kept on purpose\n"
        assert _lint(source) == []

    def test_pragma_text_inside_string_literal_ignored(self):
        source = 'text = "# twl: allow(TWL001) reason=doc example"\n'
        assert _lint(source) == []

    def test_pragma_mentioned_mid_comment_ignored(self):
        source = "x = 1  # docs: add a `# twl: allow(TWL001)` pragma here\n"
        assert _lint(source) == []


BASE_SCHEME = textwrap.dedent(
    """
    class Scheme:
        def __init__(self):
            self.moves = 0

        def snapshot_state(self):
            return {"moves": self.moves}

        def restore_state(self, state):
            self.moves = state["moves"]
    """
)

CHILD_SCHEME = textwrap.dedent(
    """
    from base import Scheme


    class Rotating(Scheme):
        def write(self, logical):
            self.cursor = logical
    """
)


class TestProjectPass:
    """The two-phase pipeline end to end, over throwaway trees."""

    def _tree(self, tmp_path, child_source=CHILD_SCHEME):
        (tmp_path / "base.py").write_text(BASE_SCHEME)
        (tmp_path / "child.py").write_text(child_source)
        return str(tmp_path)

    def test_cross_file_twl008_finding(self, tmp_path):
        out = lint_paths([self._tree(tmp_path)])
        assert _rules(out) == {"TWL008"}
        (violation,) = out
        assert violation.path.endswith("child.py")
        assert "'cursor'" in violation.message

    def test_reasoned_pragma_suppresses_project_rule(self, tmp_path):
        suppressed = CHILD_SCHEME.replace(
            "self.cursor = logical",
            "self.cursor = logical  "
            "# twl: allow(TWL008) reason=derived, rebuilt on restore",
        )
        assert lint_paths([self._tree(tmp_path, suppressed)]) == []

    def test_project_pass_audits_project_rule_pragmas(self, tmp_path):
        stale = CHILD_SCHEME.replace(
            "self.cursor = logical",
            "pass  # twl: allow(TWL008) reason=obsolete",
        )
        out = lint_paths([self._tree(tmp_path, stale)])
        assert _rules(out) == {"TWL010"}

    def test_json_report_schema(self, tmp_path):
        suppressed = CHILD_SCHEME.replace(
            "self.cursor = logical",
            "self.cursor = logical  "
            "# twl: allow(TWL008) reason=derived, rebuilt on restore",
        )
        report = run_lint_report([self._tree(tmp_path, suppressed)], classify=False)
        payload = json.loads(json.dumps(report.to_json_dict(), sort_keys=True))
        assert payload["version"] == 1
        assert payload["files_checked"] == 2
        (finding,) = payload["findings"]
        assert finding["rule"] == "TWL008"
        assert finding["suppressed"] is True
        assert finding["pragma"] == {
            "reason": "derived, rebuilt on restore",
            "rules": ["TWL008"],
        }
        assert set(finding) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "suppressed",
            "pragma",
        }

    def test_json_cli_output_parses(self, tmp_path, capsys):
        from repro.devtools.lint import main as lint_main

        code = lint_main([self._tree(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        unsuppressed = [f for f in payload["findings"] if not f["suppressed"]]
        assert [f["rule"] for f in unsuppressed] == ["TWL008"]


class TestTreeClean:
    def test_full_source_tree_is_lint_clean(self):
        violations = run_lint()
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_walker_finds_the_source_tree(self):
        assert len(iter_python_files([default_lint_root()])) > 50


class _EvilObserver(EngineObserver):
    """Plants a global-RNG read inside the engine's step loop."""

    def on_batch(self, snapshot: BatchSnapshot) -> None:
        random.random()


def _engine(observers=()):
    array = PCMArray.uniform(64, 10**6)
    scheme = make_scheme("nowl", array, seed=3)
    attack = make_attack("scan", scheme.logical_pages, seed=3)
    return SimulationEngine(scheme, AttackDriver(attack), observers=observers)


@pytest.fixture
def armed_sanitizer():
    sanitize.install()
    try:
        yield
    finally:
        sanitize.uninstall()


class TestSanitizer:
    def test_clean_engine_run_passes(self, armed_sanitizer):
        assert _engine().drive(500) == 500

    def test_planted_violation_in_stepping_raises(self, armed_sanitizer):
        engine = _engine(observers=[_EvilObserver()])
        with pytest.raises(DeterminismViolation, match="TWL001"):
            engine.drive(500)

    def test_numpy_global_state_raises_in_region(self, armed_sanitizer):
        with sanitize.protected("test region"):
            with pytest.raises(DeterminismViolation):
                np.random.rand(3)

    def test_unseeded_default_rng_raises_in_region(self, armed_sanitizer):
        with sanitize.protected("test region"):
            with pytest.raises(DeterminismViolation):
                np.random.default_rng()
            # Explicit seeding stays legal even inside the region.
            assert np.random.default_rng(7).integers(10) >= 0

    def test_random_allowed_outside_region(self, armed_sanitizer):
        assert 0.0 <= random.random() < 1.0

    def test_exec_backoff_allowed_under_sanitizer(self, armed_sanitizer):
        policy = FailurePolicy(max_retries=2)
        delay = policy.retry_delay("fingerprint", 1)
        assert delay == policy.retry_delay("fingerprint", 1)

    def test_cell_run_is_protected(self, armed_sanitizer, monkeypatch):
        cell = attack_cell("nowl", "scan", scaled=SCALED, seed=11)
        result = run_cell(cell)
        assert result.demand_writes > 0

    def test_campaign_smoke_with_env(self, monkeypatch):
        monkeypatch.setenv(sanitize.SANITIZE_ENV, "1")
        cells = [attack_cell("nowl", "scan", scaled=SCALED, seed=11)]
        try:
            results = run_cells(cells, jobs=1, progress=False)
        finally:
            sanitize.uninstall()
        assert len(results) == 1

    def test_env_campaign_fails_on_planted_violation(self, monkeypatch):
        monkeypatch.setenv(sanitize.SANITIZE_ENV, "1")
        cell = attack_cell("nowl", "scan", scaled=SCALED, seed=11)
        try:
            sanitize.maybe_install_from_env()
            with sanitize.protected(cell.describe()):
                with pytest.raises(DeterminismViolation):
                    random.random()
        finally:
            sanitize.uninstall()

    def test_install_is_idempotent(self):
        sanitize.install()
        sanitize.install()
        try:
            assert sanitize.sanitizer_installed()
        finally:
            sanitize.uninstall()
        assert not sanitize.sanitizer_installed()
        # The patched entry points must be fully restored: a call inside
        # a protected region after uninstall must not raise.
        with sanitize.protected("after uninstall"):
            assert 0.0 <= random.random() < 1.0
