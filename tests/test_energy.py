"""Tests for the write-energy model."""

import pytest

from repro.errors import ConfigError
from repro.pcm.dcw import DataComparisonWriteModel
from repro.sim.metrics import SchemeOverheads
from repro.timing.energy import (
    EnergyBreakdown,
    EnergyModelConfig,
    energy_per_demand_write,
    nowl_baseline,
)


def _overheads(scheme, swap_ratio):
    return SchemeOverheads(
        scheme=scheme,
        workload="test",
        demand_writes=1000,
        swap_write_ratio=swap_ratio,
        swap_event_ratio=swap_ratio / 2,
        extra_stats={},
    )


class TestEnergyModel:
    def test_baseline_has_no_overhead_terms(self):
        baseline = nowl_baseline()
        assert baseline.migration_energy == 0.0
        assert baseline.control_energy == 0.0
        assert baseline.total == baseline.demand_write_energy

    def test_dcw_scales_demand_energy(self):
        sparse = nowl_baseline(dcw=DataComparisonWriteModel(flip_probability=0.1))
        dense = nowl_baseline(dcw=DataComparisonWriteModel(flip_probability=0.5))
        assert dense.demand_write_energy == pytest.approx(
            5 * sparse.demand_write_energy
        )

    def test_migration_energy_proportional_to_swaps(self):
        low = energy_per_demand_write("twl", _overheads("twl", 0.01))
        high = energy_per_demand_write("twl", _overheads("twl", 0.04))
        assert high.migration_energy == pytest.approx(4 * low.migration_energy)

    def test_migrations_pay_full_page(self):
        # With DCW at 25% flips, a 4% migration ratio costs 16% of the
        # demand energy (full page vs quarter page).
        breakdown = energy_per_demand_write("twl", _overheads("twl", 0.04))
        assert breakdown.migration_energy == pytest.approx(
            0.16 * breakdown.demand_write_energy, rel=1e-6
        )

    def test_control_energy_small(self):
        breakdown = energy_per_demand_write("bwl", _overheads("bwl", 0.03))
        assert breakdown.control_energy < 0.01 * breakdown.demand_write_energy

    def test_overhead_versus_baseline(self):
        baseline = nowl_baseline()
        twl = energy_per_demand_write("twl", _overheads("twl", 0.022))
        overhead = twl.overhead_versus(baseline)
        # ~2.2% extra full-page writes over 25%-flip demand writes ≈ 9%.
        assert 0.05 < overhead < 0.15

    def test_bwl_energy_above_twl(self):
        bwl = energy_per_demand_write("bwl", _overheads("bwl", 0.08))
        twl = energy_per_demand_write("twl", _overheads("twl", 0.03))
        assert bwl.total > twl.total

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            EnergyModelConfig(write_energy_per_bit=0.0)
        with pytest.raises(ConfigError):
            EnergyModelConfig(control_energy_per_cycle=-1.0)

    def test_overhead_rejects_zero_baseline(self):
        zero = EnergyBreakdown("x", 0.0, 0.0, 0.0)
        with pytest.raises(ConfigError):
            nowl_baseline().overhead_versus(zero)
