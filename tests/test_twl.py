"""Tests for the full Toss-up Wear Leveling engine."""

import numpy as np
import pytest

from repro.config import TWLConfig
from repro.core.pairing import build_pair_table
from repro.core.twl import TossUpWearLeveling
from repro.errors import ConfigError
from repro.pcm.array import PCMArray
from repro.tables.pair_table import PairTable


def _make(endurance, **config_overrides):
    array = PCMArray(np.asarray(endurance))
    defaults = dict(toss_up_interval=1, inter_pair_swap_interval=10**6)
    defaults.update(config_overrides)
    scheme = TossUpWearLeveling(array, config=TWLConfig(**defaults), seed=1)
    return array, scheme


class TestPairing:
    def test_swp_builder(self):
        table = build_pair_table(np.array([5, 1, 9, 3]), "swp")
        assert table.partner(1) == 2  # weakest with strongest

    def test_ap_builder(self):
        table = build_pair_table(np.array([5, 1, 9, 3]), "ap")
        assert table.partner(0) == 1

    def test_random_builder_deterministic(self):
        a = build_pair_table(np.arange(1, 17), "random", seed=4)
        b = build_pair_table(np.arange(1, 17), "random", seed=4)
        assert [a.partner(i) for i in range(16)] == [b.partner(i) for i in range(16)]

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            build_pair_table(np.array([1, 2]), "bogus")

    def test_explicit_pair_table_size_checked(self):
        array = PCMArray.uniform(4, 100)
        with pytest.raises(ValueError):
            TossUpWearLeveling(array, pair_table=PairTable.adjacent(8))


class TestWriteFlow:
    def test_direct_write_costs_one(self):
        array, scheme = _make([1000, 1000], toss_up_interval=32)
        assert scheme.write(0) == 1
        assert array.total_writes == 1

    def test_toss_up_triggers_at_interval(self):
        array, scheme = _make([1000, 1000], toss_up_interval=4)
        for _ in range(3):
            scheme.write(0)
        assert scheme.toss_up_activations == 0
        scheme.write(0)
        assert scheme.toss_up_activations == 1

    def test_swap_exchanges_remapping(self):
        # With an extreme endurance ratio the first toss from the weak
        # frame will move the page to the strong one.
        array, scheme = _make([10**6, 1])
        original = scheme.translate(1)
        for _ in range(20):
            scheme.write(1)
        assert scheme.translate(1) == 0  # parked on the strong frame
        assert scheme.translate(0) == original or scheme.translate(0) == 1

    def test_swap_costs_two_writes(self):
        array, scheme = _make([10**6, 1])
        writes = scheme.write(1)  # toss: almost surely chooses frame 0
        assert writes == 2
        assert array.page_writes(0) == 1
        assert array.page_writes(1) == 1

    def test_self_paired_page_never_tosses(self):
        array, scheme = _make([100, 200, 300])  # odd count: median self-paired
        median_la = next(
            la for la in range(3) if scheme.pair_table.partner(la) == la
        )
        for _ in range(10):
            scheme.write(median_la)
        assert scheme.swap_judge.swapped == 0

    def test_mapping_bijective_under_load(self):
        endurance = np.arange(1, 17) * 100
        array, scheme = _make(endurance, toss_up_interval=2, inter_pair_swap_interval=16)
        for step in range(2000):
            scheme.write(step % 16)
        scheme.remap.validate()

    def test_wear_accounting_consistent(self):
        array, scheme = _make(np.full(16, 10**6), toss_up_interval=2,
                              inter_pair_swap_interval=32)
        for step in range(1000):
            scheme.write(step % 16)
        assert array.total_writes == scheme.demand_writes + scheme.swap_writes


class TestEnduranceProportionality:
    def test_repeat_writes_split_by_endurance(self):
        array, scheme = _make([3000, 1000])
        for _ in range(4000):
            scheme.write(0)
            if array.failed:
                break
        wear = array.write_counts()
        # Direct writes split ~3:1 plus symmetric swap writes.
        assert wear[0] > wear[1] * 1.5

    def test_remaining_endurance_mode(self):
        array, scheme = _make([2000, 2000], use_remaining_endurance=True)
        # Pre-wear frame 0 heavily through direct array writes.
        array.write_many(0, 1500)
        for _ in range(500):
            scheme.write(0)
        wear = array.write_counts()
        # Remaining-endurance toss-up must steer new wear to frame 1.
        assert wear[1] > 250


class TestInterPairSwap:
    def test_inter_pair_swap_occurs(self):
        endurance = np.full(8, 10**6)
        array, scheme = _make(endurance, toss_up_interval=64,
                              inter_pair_swap_interval=4)
        for _ in range(40):
            scheme.write(0)
        assert scheme.inter_pair_swaps >= 9

    def test_inter_pair_swap_costs_two(self):
        endurance = np.full(8, 10**6)
        array, scheme = _make(endurance, toss_up_interval=64,
                              inter_pair_swap_interval=2)
        scheme.write(0)
        writes = scheme.write(0)  # second write fires the inter-pair swap
        assert writes == 3  # 2 migration + 1 demand

    def test_repeat_traffic_spreads_across_pairs(self):
        endurance = np.full(64, 10**6)
        array, scheme = _make(endurance, toss_up_interval=64,
                              inter_pair_swap_interval=8)
        for _ in range(5000):
            scheme.write(0)
        touched = int((array.write_counts() > 0).sum())
        assert touched > 32

    def test_physical_pairs_maintained(self):
        endurance = np.arange(1, 17) * 100
        array, scheme = _make(
            endurance,
            toss_up_interval=2,
            inter_pair_swap_interval=4,
            maintain_physical_pairs=True,
        )
        initial_frame_pairs = {
            frozenset((scheme.remap.lookup(la), scheme.remap.lookup(scheme.pair_table.partner(la))))
            for la in range(16)
        }
        for step in range(500):
            scheme.write(step % 16)
        current = {
            frozenset((scheme.remap.lookup(la), scheme.remap.lookup(scheme.pair_table.partner(la))))
            for la in range(16)
        }
        assert current == initial_frame_pairs

    def test_stats_exposed(self):
        array, scheme = _make([100, 200])
        scheme.write(0)
        stats = scheme.stats()
        for key in ("toss_up_activations", "toss_up_swaps", "inter_pair_swaps"):
            assert key in stats
