"""Tests for the experiment result cache."""

import json

import pytest

from repro.errors import SimulationError
from repro.pcm.faults import FirstFailure
from repro.sim.cache import ResultCache, cache_key
from repro.sim.lifetime import LifetimeResult


def _result(demand=100, with_failure=True):
    failure = FirstFailure(3, demand, 500) if with_failure else None
    return LifetimeResult(
        scheme="twl",
        workload="scan",
        n_pages=64,
        endurance_mean=1000.0,
        demand_writes=demand,
        device_writes=demand + 5,
        failed=with_failure,
        failure=failure,
    )


class TestCacheKey:
    def test_stable(self):
        assert cache_key(a=1, b="x") == cache_key(a=1, b="x")

    def test_order_independent(self):
        assert cache_key(a=1, b=2) == cache_key(b=2, a=1)

    def test_values_matter(self):
        assert cache_key(a=1) != cache_key(a=2)

    def test_dataclasses_participate(self):
        from repro.config import TWLConfig

        assert cache_key(c=TWLConfig()) != cache_key(c=TWLConfig(toss_up_interval=4))


class TestResultCache:
    def test_roundtrip_with_failure(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(path)
        cache.put("k", _result())
        cache.save()
        reloaded = ResultCache(path)
        result = reloaded.get("k")
        assert result.demand_writes == 100
        assert result.failure.physical_page == 3
        assert result.lifetime_fraction == pytest.approx(100 / 64000)

    def test_roundtrip_without_failure(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(path)
        cache.put("k", _result(with_failure=False))
        cache.save()
        assert ResultCache(path).get("k").failure is None

    def test_get_or_run_caches(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(path)
        calls = []

        def run():
            calls.append(1)
            return _result()

        first = cache.get_or_run("k", run)
        second = cache.get_or_run("k", run)
        assert len(calls) == 1
        assert first.demand_writes == second.demand_writes
        assert cache.hits == 1
        assert cache.misses == 1

    def test_missing_key(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        assert cache.get("nope") is None

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError):
            ResultCache(str(path))

    def test_version_checked(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(SimulationError):
            ResultCache(str(path))

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.json"))
        cache.put("k", _result())
        cache.clear()
        assert len(cache) == 0

    def test_atomic_save_leaves_no_temp(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(path)
        cache.put("k", _result())
        cache.save()
        assert not (tmp_path / "cache.json.tmp").exists()
