"""Tests for the toss-up decision component."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tossup import TossUp, toss_up_threshold
from repro.errors import ConfigError


class TestThreshold:
    def test_equal_endurance_is_half(self):
        assert toss_up_threshold(100, 100, rng_bits=8) == 128

    def test_proportional(self):
        # 3:1 endurance ratio -> 192/256.
        assert toss_up_threshold(300, 100, rng_bits=8) == 192

    def test_extreme_ratio(self):
        threshold = toss_up_threshold(10**8, 1, rng_bits=8)
        assert threshold == 255  # fixed point saturates below 256

    def test_precision_scales_with_bits(self):
        assert toss_up_threshold(2, 1, rng_bits=16) == (2 << 16) // 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            toss_up_threshold(0, 5)
        with pytest.raises(ConfigError):
            toss_up_threshold(5, -1)

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigError):
            toss_up_threshold(1, 1, rng_bits=0)

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    @settings(max_examples=200, deadline=None)
    def test_threshold_bounds_property(self, e_a, e_b):
        threshold = toss_up_threshold(e_a, e_b, rng_bits=8)
        assert 0 <= threshold <= 256
        # Complementary thresholds sum to ~256 (fixed-point floors).
        complement = toss_up_threshold(e_b, e_a, rng_bits=8)
        assert 255 <= threshold + complement <= 256


class TestTossUp:
    def test_empirical_probability_tracks_endurance(self):
        toss = TossUp(rng_bits=8, seed=1)
        choices_a = sum(toss.choose_a(300, 100) for _ in range(2560))
        assert choices_a / 2560 == pytest.approx(0.75, abs=0.02)

    def test_certain_choice_with_extreme_ratio(self):
        toss = TossUp(rng_bits=8, seed=2)
        fraction = sum(toss.choose_a(10**6, 1) for _ in range(256)) / 256
        assert fraction > 0.99

    def test_counters(self):
        toss = TossUp(seed=3)
        for _ in range(10):
            toss.choose_a(1, 1)
        assert toss.decisions == 10
        assert 0 <= toss.chose_a <= 10
        assert toss.observed_a_fraction() == toss.chose_a / 10

    def test_fraction_zero_before_decisions(self):
        assert TossUp().observed_a_fraction() == 0.0

    def test_deterministic_given_seed(self):
        a = TossUp(seed=7)
        b = TossUp(seed=7)
        seq_a = [a.choose_a(3, 2) for _ in range(64)]
        seq_b = [b.choose_a(3, 2) for _ in range(64)]
        assert seq_a == seq_b
