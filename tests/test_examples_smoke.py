"""Smoke checks for the example scripts.

The examples are exercised end-to-end by `make examples`; here we only
verify they import cleanly and expose a ``main`` entry point, so API
drift in the library breaks the suite instead of a user's first run.
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = (
    "quickstart",
    "attack_anatomy",
    "parsec_lifetime",
    "design_space",
    "custom_scheme",
    "wear_timeline",
    "figure_gallery",
)


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_and_has_main(name):
    module = _load(name)
    assert callable(module.main)


def test_custom_scheme_class_is_usable():
    """The custom-scheme example's class satisfies the interface."""
    from repro.pcm.array import PCMArray

    module = _load("custom_scheme")
    array = PCMArray.uniform(16, 1000)
    scheme = module.ProbabilisticSwap(array, seed=1)
    for step in range(200):
        assert scheme.write(step % 16) >= 1
    assert array.total_writes == scheme.demand_writes + scheme.swap_writes
    mapping = [scheme.translate(la) for la in range(16)]
    assert sorted(mapping) == list(range(16))
