"""Tests for PARSEC workload profiles and trace synthesis."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.parsec import (
    BenchmarkProfile,
    PARSEC_TABLE2,
    get_profile,
    make_benchmark_trace,
)


class TestTable2Data:
    def test_all_thirteen_present(self):
        assert len(PARSEC_TABLE2) == 13

    def test_paper_values_verbatim(self):
        vips = get_profile("vips")
        assert vips.write_bandwidth_mbps == 3309.0
        assert vips.ideal_lifetime_years == 16.0
        assert vips.lifetime_no_wl_years == 0.9

    def test_concentrations_positive(self):
        for profile in PARSEC_TABLE2.values():
            assert profile.concentration > 1.0

    def test_unknown_benchmark(self):
        with pytest.raises(TraceError):
            get_profile("doom")

    def test_memory_boundedness_ordering(self):
        vips = get_profile("vips").memory_boundedness()
        streamcluster = get_profile("streamcluster").memory_boundedness()
        assert vips == pytest.approx(1.0)
        assert streamcluster < 0.6

    def test_profile_validation(self):
        with pytest.raises(TraceError):
            BenchmarkProfile("x", -1.0, 10.0, 1.0)
        with pytest.raises(TraceError):
            BenchmarkProfile("x", 1.0, 1.0, 10.0)  # no-WL above ideal
        with pytest.raises(TraceError):
            BenchmarkProfile("x", 1.0, 10.0, 1.0, footprint_fraction=0.0)


class TestTraceSynthesis:
    def test_max_share_matches_concentration(self):
        profile = get_profile("canneal")
        trace = make_benchmark_trace(profile, 1024, 200_000, seed=1)
        histogram = trace.write_histogram(1024)
        concentration = histogram.max() / trace.n_writes * 1024
        assert concentration == pytest.approx(profile.concentration, rel=0.15)

    def test_footprint_respected(self):
        profile = get_profile("canneal")
        trace = make_benchmark_trace(profile, 1024, 100_000, seed=1)
        assert trace.footprint_pages <= int(1024 * 0.25) + 1

    def test_footprint_override(self):
        profile = get_profile("canneal")
        trace = make_benchmark_trace(
            profile, 1024, 100_000, seed=1, footprint_override=1.0
        )
        assert trace.footprint_pages > 512

    def test_diffuse_workload_bumps_footprint(self):
        # dedup has concentration 14: a 1% footprint is unreachable and
        # must be bumped instead of crashing.
        profile = get_profile("dedup")
        trace = make_benchmark_trace(
            profile, 1024, 50_000, seed=1, footprint_override=0.01
        )
        assert trace.n_writes == 50_000

    def test_deterministic_per_seed(self):
        profile = get_profile("x264")
        a = make_benchmark_trace(profile, 256, 10_000, seed=9)
        b = make_benchmark_trace(profile, 256, 10_000, seed=9)
        assert (a.pages == b.pages).all()

    def test_different_benchmarks_differ(self):
        a = make_benchmark_trace(get_profile("x264"), 256, 10_000, seed=9)
        b = make_benchmark_trace(get_profile("vips"), 256, 10_000, seed=9)
        assert not (a.pages == b.pages).all()

    def test_active_set_scattered(self):
        profile = get_profile("canneal")
        trace = make_benchmark_trace(profile, 1024, 100_000, seed=1)
        touched = np.nonzero(trace.write_histogram(1024))[0]
        # Active pages should span the address space, not one corner.
        assert touched.min() < 200
        assert touched.max() > 800

    def test_includes_reads_when_asked(self):
        profile = get_profile("ferret")
        trace = make_benchmark_trace(profile, 256, 30_000, seed=2, include_reads=True)
        assert trace.write_fraction == pytest.approx(profile.write_fraction, abs=0.03)
