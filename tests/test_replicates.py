"""Tests for multi-seed replication."""

import pytest

from repro.config import ScaledArrayConfig
from repro.errors import SimulationError
from repro.sim.replicates import (
    replicate_attack_lifetime,
    replicate_trace_lifetime,
)
from repro.traces.parsec import get_profile

SCALED = ScaledArrayConfig(n_pages=128, endurance_mean=1536.0)


class TestReplication:
    def test_replicates_vary(self):
        summary = replicate_attack_lifetime(
            "sr", "scan", n_replicates=4, scaled=SCALED
        )
        assert summary.n_replicates == 4
        assert len(set(summary.fractions)) > 1  # seeds actually differ

    def test_summary_statistics_consistent(self):
        summary = replicate_attack_lifetime(
            "nowl", "scan", n_replicates=3, scaled=SCALED
        )
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.std >= 0.0
        assert summary.confidence_halfwidth() >= 0.0

    def test_deterministic_given_root_seed(self):
        a = replicate_attack_lifetime("sr", "scan", n_replicates=2, scaled=SCALED, seed=7)
        b = replicate_attack_lifetime("sr", "scan", n_replicates=2, scaled=SCALED, seed=7)
        assert a.fractions == b.fractions

    def test_single_replicate_std_zero(self):
        summary = replicate_attack_lifetime(
            "nowl", "repeat", n_replicates=1, scaled=SCALED
        )
        assert summary.std == 0.0
        assert summary.confidence_halfwidth() == 0.0

    def test_trace_replication(self):
        summary = replicate_trace_lifetime(
            "sr",
            get_profile("vips"),
            trace_writes=20_000,
            n_replicates=3,
            scaled=SCALED,
        )
        assert summary.workload == "vips"
        assert summary.mean > 0.1

    def test_rejects_zero_replicates(self):
        with pytest.raises(SimulationError):
            replicate_attack_lifetime("nowl", "repeat", n_replicates=0, scaled=SCALED)

    def test_scan_lifetime_stable_across_seeds(self):
        # Uniform-wear workloads have low seed sensitivity by design.
        summary = replicate_attack_lifetime(
            "sr", "scan", n_replicates=4, scaled=SCALED
        )
        assert summary.std < 0.2 * summary.mean
