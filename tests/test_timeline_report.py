"""Tests for the wear timeline and the Markdown report builder."""

import pytest

from repro.analysis.report import build_report
from repro.analysis.timeline import WearTimeline
from repro.attacks.repeat import RepeatWriteAttack
from repro.attacks.scan import ScanWriteAttack
from repro.config import ScaledArrayConfig
from repro.errors import SimulationError
from repro.experiments.setups import ExperimentSetup
from repro.pcm.array import PCMArray
from repro.sim.drivers import AttackDriver
from repro.wearlevel.nowl import NoWearLeveling


class TestWearTimeline:
    def _timeline(self, n=16, endurance=1000):
        array = PCMArray.uniform(n, endurance)
        scheme = NoWearLeveling(array)
        return WearTimeline(scheme, AttackDriver(ScanWriteAttack(n)))

    def test_snapshots_taken(self):
        timeline = self._timeline()
        points = timeline.run(1000, snapshots=10)
        assert len(points) == 10
        assert points[-1].demand_writes == 1000

    def test_series_extraction(self):
        timeline = self._timeline()
        timeline.run(800, snapshots=4)
        gini = timeline.series("wear_gini")
        assert len(gini) == 4
        # Scan writes on NOWL are perfectly even per full pass.
        assert gini[-1] < 0.1

    def test_stops_at_failure(self):
        array = PCMArray.uniform(4, 50)
        scheme = NoWearLeveling(array)
        timeline = WearTimeline(scheme, AttackDriver(RepeatWriteAttack(4)))
        points = timeline.run(10_000, snapshots=10)
        assert array.has_failure
        assert points[-1].stats.max_wear_fraction >= 1.0

    def test_monotone_wear(self):
        timeline = self._timeline()
        timeline.run(1000, snapshots=5)
        maxima = timeline.series("max_wear_fraction")
        assert all(b >= a for a, b in zip(maxima, maxima[1:]))

    def test_unknown_field(self):
        timeline = self._timeline()
        timeline.run(100, snapshots=1)
        with pytest.raises(SimulationError):
            timeline.series("nonsense")

    def test_validation(self):
        timeline = self._timeline()
        with pytest.raises(SimulationError):
            timeline.run(0)
        with pytest.raises(SimulationError):
            timeline.run(10, snapshots=0)

    def test_empty_series(self):
        assert self._timeline().series("wear_gini") == []


class TestReport:
    @pytest.fixture(scope="class")
    def tiny_setup(self):
        return ExperimentSetup(
            scaled=ScaledArrayConfig(n_pages=128, endurance_mean=1536.0),
            benchmarks=("vips",),
            trace_writes=20_000,
            overhead_writes=15_000,
        )

    def test_single_section(self, tiny_setup):
        text = build_report(tiny_setup, sections=("overhead",))
        assert "# TWL reproduction report" in text
        assert "Section 5.4" in text
        assert "Figure 6" not in text

    def test_fig6_section_runs(self, tiny_setup):
        text = build_report(tiny_setup, sections=("fig6",))
        assert "Figure 6" in text
        assert "twl_swp" in text

    def test_unknown_section_rejected(self, tiny_setup):
        with pytest.raises(ValueError):
            build_report(tiny_setup, sections=("fig99",))
