"""Tentpole tests: the resilient campaign service (:mod:`repro.serve`).

Every robustness promise of ``twl-repro serve`` is exercised in-process
here against a real :class:`CampaignServer` on an ephemeral TCP port:

* a served cell is **bit-identical to serial execution**, and replays
  from the per-session journal and the shared cache stay identical;
* duplicate in-flight submissions coalesce onto one execution;
* admission past ``queue_limit`` is rejected with a structured
  ``overloaded`` frame instead of unbounded buffering;
* per-request deadlines expire hung cells (portable, off-main-thread);
* a SIGKILLed worker is retried on a rebuilt pool, and past the
  rebuild budget the server degrades (and says so in every response);
* a vanished client's execution is cancelled, reclaiming its slot;
* a drained server rejects new work but a restarted server on the same
  state dir resumes its sessions from the journal;
* the chaos load generator's acceptance contract holds end to end.

The heavier out-of-process gate (server SIGKILL + restart mid-campaign)
lives in ``benchmarks/serve_chaos_check.py``; these tests cover the
same mechanisms where a debugger can reach them.
"""

import asyncio
import json
import os
import signal

import pytest

from repro.config import ScaledArrayConfig
from repro.exec import FaultPlan, attack_cell, cell_fingerprint, run_cells
from repro.exec.cache import encode_result
from repro.exec.faults import FAULTS_ENV
from repro.serve.cli import parse_address
from repro.serve.loadgen import (
    open_connection,
    run_loadgen,
    submit_cell,
    verify_bit_identity,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_cell,
    decode_frame,
    encode_cell,
    encode_frame,
)
from repro.serve.server import CampaignServer, ServerConfig
from repro.serve.session import valid_session_name

SCALED = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)


def _cell(scheme="nowl", attack="scan", seed=11):
    return attack_cell(scheme, attack, scaled=SCALED, seed=seed)


def _config(tmp_path, **kwargs):
    kwargs.setdefault("state_dir", str(tmp_path / "state"))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("health_interval", 0.0)  # no probe loop in tests
    kwargs.setdefault("drain_grace", 2.0)
    return ServerConfig(**kwargs)


def _arm(monkeypatch, tmp_path, **kwargs):
    """Activate a fault plan through the environment (spawn-safe)."""
    kwargs.setdefault("state_dir", str(tmp_path / "fault-state"))
    plan = FaultPlan(**kwargs)
    monkeypatch.setenv(FAULTS_ENV, plan.to_env())
    return plan


def _tcp(server):
    host, port = server.address
    return ("tcp", host, port)


def _serial_payload(cell):
    """The wire-normalized serial payload every served copy must match."""
    kind, payload = encode_result(run_cells([cell], jobs=1)[0])
    return json.loads(json.dumps({"kind": kind, "payload": payload}))


async def _closed(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (OSError, ConnectionError):
        pass


class TestProtocol:
    """The NDJSON frame schema and the cell wire codec."""

    def test_cell_round_trip_is_fingerprint_stable(self):
        for cell in (_cell(), _cell("sr", "repeat", seed=13)):
            wire = json.loads(json.dumps(encode_cell(cell)))
            decoded = decode_cell(wire)
            assert decoded == cell
            assert cell_fingerprint(decoded) == cell_fingerprint(cell)

    def test_unknown_dataclass_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown dataclass"):
            decode_cell(
                {
                    "__dataclass__": "ExperimentCell",
                    "fields": {
                        "scaled": {"__dataclass__": "os.system", "fields": {}}
                    },
                }
            )

    def test_unknown_field_is_rejected(self):
        wire = encode_cell(_cell())
        wire["fields"]["not_a_field"] = 1
        with pytest.raises(ProtocolError, match="no field"):
            decode_cell(wire)

    def test_non_cell_payloads_are_rejected(self):
        for bad in (None, 42, [], {"__dataclass__": "TWLConfig", "fields": {}}):
            with pytest.raises(ProtocolError):
                decode_cell(bad)

    def test_frame_schema_is_enforced(self):
        for bad in (
            b"not json\n",
            b"[1,2]\n",
            b'{"op": "explode", "id": "x"}\n',
            b'{"op": "ping"}\n',
            b'{"op": "ping", "id": ""}\n',
        ):
            with pytest.raises(ProtocolError):
                decode_frame(bad)
        assert decode_frame(b'{"op": "ping", "id": "r1"}\n')["op"] == "ping"

    def test_oversized_frames_are_rejected_both_ways(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_session_names(self):
        assert valid_session_name("alice")
        assert valid_session_name("run-2.b_1")
        for bad in ("", "../evil", "a/b", "x" * 65, ".hidden", 7):
            assert not valid_session_name(bad)

    def test_parse_address(self):
        assert parse_address("unix:/tmp/twl.sock") == ("unix", "/tmp/twl.sock")
        assert parse_address("127.0.0.1:9000") == ("tcp", "127.0.0.1", 9000)
        with pytest.raises(Exception):
            parse_address("no-port-here")


class TestServeRoundTrip:
    """Submission, persistence tiers, and the bit-identity contract."""

    def test_submit_then_journal_then_cache(self, tmp_path):
        cell = _cell()
        expected = _serial_payload(cell)
        fingerprint = cell_fingerprint(cell)

        async def scenario():
            server = CampaignServer(_config(tmp_path))
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                fresh = await submit_cell(
                    reader, writer, cell, "r1", session="alice"
                )
                again = await submit_cell(
                    reader, writer, cell, "r2", session="alice"
                )
                other = await submit_cell(
                    reader, writer, cell, "r3", session="bob"
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, fresh, again, other

        server, fresh, again, other = asyncio.run(scenario())
        # Fresh execution: bit-identical to serial, correctly labeled.
        assert fresh["ok"] and fresh["status"] == "done"
        assert fresh["source"] == "run"
        assert fresh["id"] == "r1"
        assert fresh["fingerprint"] == fingerprint
        assert fresh["degraded"] is False
        assert {"kind": fresh["kind"], "payload": fresh["payload"]} == expected
        # Same session resubmission: served from the session journal.
        assert again["source"] == "journal"
        assert {"kind": again["kind"], "payload": again["payload"]} == expected
        # Another session: the shared content-addressed cache answers.
        assert other["source"] == "cache"
        assert {"kind": other["kind"], "payload": other["payload"]} == expected
        assert server.stats["journal_hits"] == 1
        assert server.stats["cache_hits"] == 1

    def test_ping_and_stats(self, tmp_path):
        async def scenario():
            server = CampaignServer(_config(tmp_path))
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                writer.write(b'{"op": "ping", "id": "p"}\n')
                writer.write(b'{"op": "stats", "id": "s"}\n')
                await writer.drain()
                replies = {}
                for _ in range(2):
                    record = json.loads(await reader.readline())
                    replies[record["id"]] = record
                await _closed(writer)
            finally:
                await server.shutdown()
            return replies

        replies = asyncio.run(scenario())
        assert replies["p"]["status"] == "pong"
        stats = replies["s"]
        assert stats["ok"] and stats["status"] == "stats"
        assert stats["workers"] == 2
        assert stats["draining"] is False
        assert "submitted" in stats["stats"]

    def test_duplicate_inflight_submissions_coalesce(self, tmp_path):
        cell = _cell(seed=17)
        expected = _serial_payload(cell)

        async def scenario():
            server = CampaignServer(_config(tmp_path))
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                # Two frames on one connection, written back to back: the
                # first admits, the second finds the in-flight entry (its
                # handler task runs before the first execution can finish).
                for request_id in ("a", "b"):
                    frame = {
                        "op": "submit",
                        "id": request_id,
                        "cell": encode_cell(cell),
                    }
                    writer.write((json.dumps(frame) + "\n").encode())
                await writer.drain()
                replies = {}
                for _ in range(2):
                    record = json.loads(await reader.readline())
                    replies[record["id"]] = record
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, replies

        server, replies = asyncio.run(scenario())
        sources = {record["source"] for record in replies.values()}
        assert sources == {"run", "coalesced"}
        for record in replies.values():
            assert {"kind": record["kind"], "payload": record["payload"]} == expected
        assert server.stats["coalesced"] == 1
        # Exactly one execution banked the result.
        assert server.stats["submitted"] == 2
        assert server.stats["completed"] == 2


class TestAdmissionAndDeadlines:
    """Backpressure, deadline expiry, and drain-then-exit."""

    def test_overload_gets_structured_rejection(self, monkeypatch, tmp_path):
        _arm(
            monkeypatch, tmp_path,
            mode="hang", rate=1.0, times=1, hang_seconds=20.0,
        )
        hanging = _cell(seed=21)
        blocked = _cell(seed=22)

        async def scenario():
            server = CampaignServer(
                _config(tmp_path, workers=1, queue_limit=1, drain_grace=0.2)
            )
            await server.start()
            try:
                r1, w1 = await open_connection(_tcp(server))
                first = asyncio.ensure_future(
                    submit_cell(r1, w1, hanging, "hang", deadline=1.0)
                )
                # Let the hanging cell be admitted before the second one.
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if server._active >= 1:
                        break
                r2, w2 = await open_connection(_tcp(server))
                rejected = await submit_cell(r2, w2, blocked, "full")
                timed_out = await first
                await _closed(w1)
                await _closed(w2)
            finally:
                await server.shutdown()
            return server, rejected, timed_out

        server, rejected, timed_out = asyncio.run(scenario())
        assert rejected["ok"] is False
        assert rejected["status"] == "rejected"
        assert rejected["error"]["code"] == "overloaded"
        assert server.stats["rejected_overloaded"] == 1
        # The hung cell was cut down by its own (portable) deadline.
        assert timed_out["ok"] is False
        assert timed_out["error"]["code"] == "deadline"
        assert server.stats["deadline_expired"] == 1

    def test_drain_rejects_new_submissions(self, tmp_path):
        async def scenario():
            server = CampaignServer(_config(tmp_path))
            await server.start()
            try:
                server.begin_drain()
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(reader, writer, _cell(), "late")
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, response

        server, response = asyncio.run(scenario())
        assert response["ok"] is False
        assert response["status"] == "rejected"
        assert response["error"]["code"] == "shutdown"
        assert server.stats["rejected_shutdown"] == 1

    def test_malformed_and_oversized_frames_never_kill_the_server(
        self, tmp_path
    ):
        async def scenario():
            server = CampaignServer(_config(tmp_path))
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                writer.write(b"this is not json\n")
                await writer.drain()
                garbage = json.loads(await reader.readline())
                writer.write(b'{"op": "submit", "id": "x", "cell": 42}\n')
                await writer.drain()
                badcell = json.loads(await reader.readline())
                await _closed(writer)
                # Oversized: the server answers once, then closes.
                reader, writer = await open_connection(_tcp(server))
                writer.write(b"x" * (MAX_FRAME_BYTES + 4096) + b"\n")
                await writer.drain()
                oversized = json.loads(await reader.readline())
                closed = await reader.readline()
                await _closed(writer)
                # And the server still serves real work afterwards.
                reader, writer = await open_connection(_tcp(server))
                alive = await submit_cell(reader, writer, _cell(), "ok")
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, garbage, badcell, oversized, closed, alive

        server, garbage, badcell, oversized, closed, alive = asyncio.run(
            scenario()
        )
        assert garbage["error"]["code"] == "malformed"
        assert badcell["error"]["code"] == "malformed"
        assert oversized["error"]["code"] == "oversized"
        assert closed == b""
        assert alive["ok"] is True
        assert server.stats["rejected_malformed"] == 2
        assert server.stats["rejected_oversized"] == 1


class TestWorkerLossAndDegradation:
    """Pool rebuilds, retry-with-backoff, and graceful degradation."""

    def test_killed_worker_is_retried_bit_identically(
        self, monkeypatch, tmp_path
    ):
        _arm(
            monkeypatch, tmp_path,
            mode="kill", rate=1.0, times=1, max_total=1,
        )
        cell = _cell(seed=31)

        async def scenario():
            server = CampaignServer(_config(tmp_path, workers=1))
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(reader, writer, cell, "kill")
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, response

        server, response = asyncio.run(scenario())
        assert response["ok"] is True
        assert response["source"] == "run"
        assert response["degraded"] is False
        assert server.stats["pool_rebuilds"] >= 1
        # The fault plan spent its budget, so the retry ran clean — and
        # must match serial execution exactly.
        monkeypatch.delenv(FAULTS_ENV)
        expected = _serial_payload(cell)
        assert {"kind": response["kind"], "payload": response["payload"]} == expected

    def test_rebuilds_past_budget_degrade_the_server(
        self, monkeypatch, tmp_path
    ):
        _arm(
            monkeypatch, tmp_path,
            mode="kill", rate=1.0, times=1, max_total=1,
        )

        async def scenario():
            server = CampaignServer(
                _config(tmp_path, workers=2, max_pool_rebuilds=0, max_retries=3)
            )
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(
                    reader, writer, _cell(seed=37), "degrade"
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, response

        server, response = asyncio.run(scenario())
        # One rebuild exceeded the zero budget: halved pool, flagged.
        assert response["ok"] is True
        assert response["degraded"] is True
        assert server.degraded
        assert server._pool_workers == 1

    def test_client_disconnect_reclaims_the_slot(self, monkeypatch, tmp_path):
        _arm(
            monkeypatch, tmp_path,
            mode="hang", rate=1.0, times=1, hang_seconds=10.0,
        )
        hanging = _cell(seed=41)

        async def scenario():
            server = CampaignServer(
                _config(tmp_path, workers=1, queue_limit=1, drain_grace=0.2)
            )
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                frame = {
                    "op": "submit",
                    "id": "vanish",
                    # Worker-side backstop so the hung cell cannot outlive
                    # the test even though nobody waits for its answer.
                    "deadline": 1.0,
                    "cell": encode_cell(hanging),
                }
                writer.write((json.dumps(frame) + "\n").encode())
                await writer.drain()
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if server._active >= 1:
                        break
                assert server._active == 1
                # The client vanishes mid-request ...
                await _closed(writer)
                # ... and the admission slot comes back without anyone
                # reading a response.
                for _ in range(200):
                    await asyncio.sleep(0.02)
                    if server._active == 0:
                        break
                active_after = server._active
                # The freed slot admits new work (distinct fingerprint,
                # fault budget already spent by the hung cell).
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(
                    reader, writer, _cell(seed=42), "next"
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return active_after, response

        active_after, response = asyncio.run(scenario())
        assert active_after == 0
        assert response["ok"] is True


class TestServerRobustnessRegressions:
    """Review fixes: busy != dead pools, cancelled executions answer,
    journal I/O off the loop, queue wait not charged to deadlines."""

    def test_health_probe_spares_a_busy_pool(self, monkeypatch, tmp_path):
        """All workers occupied is load, not death.

        With probes firing far faster than the in-flight cell and a
        single busy worker, the old health loop queued a probe, timed
        out, and tore the pool down — cancelling the admitted cell and
        burning the degradation budget.  A busy pool must be left
        alone.
        """
        _arm(
            monkeypatch, tmp_path,
            mode="hang", rate=1.0, times=1, hang_seconds=2.0,
        )

        async def scenario():
            server = CampaignServer(
                _config(
                    tmp_path, workers=1, health_interval=0.05, drain_grace=0.2
                )
            )
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(
                    reader, writer, _cell(seed=61), "busy"
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, response

        server, response = asyncio.run(scenario())
        assert response["ok"] is True
        assert server.stats["pool_rebuilds"] == 0
        assert server.degraded is False

    def test_health_probe_still_rebuilds_a_dead_idle_pool(self, tmp_path):
        async def scenario():
            server = CampaignServer(
                _config(
                    tmp_path, workers=1, health_interval=0.05, drain_grace=0.2
                )
            )
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                first = await submit_cell(reader, writer, _cell(seed=62), "warm")
                # Kill every worker behind the pool's back; the idle
                # health probe must notice and rebuild.
                for proc in list(server._pool._processes.values()):
                    os.kill(proc.pid, signal.SIGKILL)
                for _ in range(300):
                    await asyncio.sleep(0.02)
                    if server.stats["pool_rebuilds"] >= 1:
                        break
                second = await submit_cell(
                    reader, writer, _cell(seed=63), "after"
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, first, second

        server, first, second = asyncio.run(scenario())
        assert first["ok"] is True
        assert second["ok"] is True
        assert server.stats["pool_rebuilds"] >= 1

    def test_cancelled_execution_answers_with_a_frame(
        self, monkeypatch, tmp_path
    ):
        """A live waiter whose execution is cancelled must get a frame.

        Cancelling the execution future out from under its waiters is
        exactly what a pool rebuild with ``cancel_futures=True`` (or a
        shutdown past ``drain_grace``) does; the old shield re-raised
        ``CancelledError``, the handler task died, and the client hung
        with no response at all.
        """
        _arm(
            monkeypatch, tmp_path,
            mode="hang", rate=1.0, times=1, hang_seconds=10.0,
        )
        hanging = _cell(seed=64)
        fingerprint = cell_fingerprint(hanging)

        async def scenario():
            server = CampaignServer(
                _config(tmp_path, workers=1, drain_grace=0.2)
            )
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                frame = {
                    "op": "submit",
                    "id": "doomed",
                    "deadline": 2.0,
                    "cell": encode_cell(hanging),
                }
                writer.write((json.dumps(frame) + "\n").encode())
                await writer.drain()
                for _ in range(200):
                    await asyncio.sleep(0.02)
                    if fingerprint in server._inflight:
                        break
                server._inflight[fingerprint].future.cancel()
                response = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=5.0)
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return server, response

        server, response = asyncio.run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == "failed"
        assert "cancelled" in response["error"]["message"]
        assert server.stats["failed"] == 1

    def test_journal_io_does_not_stall_the_event_loop(self, tmp_path):
        """A held journal lock must not freeze unrelated connections.

        Journal appends flock + fsync; run on the event-loop thread (as
        they used to be) a foreign process holding the ``.lock``
        sidecar froze *every* connection.  Parked on the I/O thread,
        the loop keeps answering pings and the blocked submit completes
        once the lock is released.
        """
        fcntl = pytest.importorskip("fcntl")
        cell_a, cell_b = _cell(seed=65), _cell(seed=66)

        async def scenario():
            server = CampaignServer(_config(tmp_path, drain_grace=0.2))
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                await submit_cell(
                    reader, writer, cell_a, "warm", session="locked"
                )
                lock_path = server._sessions.journal_path("locked") + ".lock"
                handle = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
                fcntl.flock(handle, fcntl.LOCK_EX)
                try:
                    frame = {
                        "op": "submit",
                        "id": "blocked",
                        "session": "locked",
                        "cell": encode_cell(cell_b),
                    }
                    writer.write((json.dumps(frame) + "\n").encode())
                    await writer.drain()
                    # Let the cell execute and its persist park on the
                    # foreign flock (settled = admission released, but
                    # no response written yet).
                    for _ in range(500):
                        await asyncio.sleep(0.02)
                        if (
                            server.stats["submitted"] >= 2
                            and server._active == 0
                        ):
                            break
                    await asyncio.sleep(0.1)
                    r2, w2 = await open_connection(_tcp(server))
                    w2.write(b'{"op": "ping", "id": "alive"}\n')
                    await w2.drain()
                    pong = json.loads(
                        await asyncio.wait_for(r2.readline(), timeout=2.0)
                    )
                    await _closed(w2)
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)
                    os.close(handle)
                blocked = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=30.0)
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return pong, blocked

        pong, blocked = asyncio.run(scenario())
        assert pong["status"] == "pong"
        assert blocked["ok"] is True

    def test_queue_wait_is_not_charged_against_the_deadline(
        self, monkeypatch, tmp_path
    ):
        """A queued cell's deadline starts when it starts, not at submit.

        With one worker hogged for longer than deadline + grace, the
        old parent-side backstop expired the *queued* cell as "worker
        unresponsive" before it ever reached a worker.
        """
        _arm(
            monkeypatch, tmp_path,
            mode="hang", rate=1.0, times=1, max_total=1, hang_seconds=4.0,
        )
        hog = _cell(seed=68)
        queued = _cell(seed=69)

        async def scenario():
            server = CampaignServer(
                _config(tmp_path, workers=1, queue_limit=4, drain_grace=0.2)
            )
            await server.start()
            try:
                r1, w1 = await open_connection(_tcp(server))
                first = asyncio.ensure_future(
                    submit_cell(r1, w1, hog, "hog")
                )
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if server._active >= 1:
                        break
                r2, w2 = await open_connection(_tcp(server))
                second = await submit_cell(
                    r2, w2, queued, "queued", deadline=1.0
                )
                hogged = await first
                await _closed(w1)
                await _closed(w2)
            finally:
                await server.shutdown()
            return hogged, second

        hogged, second = asyncio.run(scenario())
        assert hogged["ok"] is True
        assert second["ok"] is True, second
        assert second["source"] == "run"

    def test_abandoned_results_are_banked_in_the_cache(self, tmp_path):
        from concurrent.futures import Future

        cell = _cell(seed=67)
        result = run_cells([cell], jobs=1)[0]

        async def scenario():
            server = CampaignServer(_config(tmp_path, drain_grace=0.2))
            await server.start()
            try:
                # A future nobody awaits completes: its result lands in
                # the shared cache (the done callback fires inline here).
                abandoned = Future()
                server._bank_abandoned(abandoned, cell)
                abandoned.set_result(result)
                # Cancelled / failed futures bank nothing.
                cancelled = Future()
                server._bank_abandoned(cancelled, cell)
                cancelled.cancel()
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(reader, writer, cell, "hit")
                await _closed(writer)
            finally:
                await server.shutdown()
            return response

        response = asyncio.run(scenario())
        assert response["ok"] is True
        assert response["source"] == "cache"


class TestSessionResume:
    """A restarted server resumes its sessions from the state dir."""

    def test_restart_serves_from_journal(self, tmp_path):
        cell = _cell(seed=51)
        expected = _serial_payload(cell)
        # Cache off: the replay can only come from the session journal.
        config = _config(tmp_path, cache=False)

        async def first_life():
            server = CampaignServer(config)
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(
                    reader, writer, cell, "r1", session="resume"
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return response

        async def second_life():
            server = CampaignServer(config)
            await server.start()
            try:
                reader, writer = await open_connection(_tcp(server))
                response = await submit_cell(
                    reader, writer, cell, "r2", session="resume"
                )
                await _closed(writer)
            finally:
                await server.shutdown()
            return response

        fresh = asyncio.run(first_life())
        resumed = asyncio.run(second_life())
        assert fresh["source"] == "run"
        assert resumed["source"] == "journal"
        for record in (fresh, resumed):
            assert {"kind": record["kind"], "payload": record["payload"]} == expected


class TestChaosContract:
    """The loadgen acceptance gate, in-process."""

    def test_chaos_run_ends_alive_and_bit_identical(self, tmp_path):
        cells = [
            _cell(scheme, attack, seed)
            for scheme in ("nowl", "sr")
            for attack in ("repeat", "scan")
            for seed in (11, 12)
        ]

        async def scenario():
            server = CampaignServer(
                _config(tmp_path, workers=2, queue_limit=8, idle_timeout=2.0)
            )
            await server.start()
            try:
                report = await run_loadgen(
                    _tcp(server),
                    cells=cells,
                    clients=6,
                    actions=6,
                    seed=2017,
                    chaos=True,
                )
            finally:
                await server.shutdown()
            return server, report

        server, report = asyncio.run(scenario())
        assert report.server_alive, report.summary()
        assert report.conflicts == [], report.summary()
        assert report.completed, report.summary()
        assert verify_bit_identity(report.completed, cells) == []
        # Chaos actually happened: the seeded mix at this seed includes
        # malformed frames and disconnects (deterministic by TWL001).
        assert report.counts.get("malformed", 0) > 0
        assert report.counts.get("disconnect", 0) > 0
        assert server.stats["rejected_malformed"] > 0

    def test_loadgen_is_deterministic(self):
        """Same seed, same action schedule — chaos is a regression test."""
        from repro.rng.streams import make_generator
        from repro.serve.loadgen import _pick_action

        def schedule():
            rng = make_generator(2017, "loadgen", "client", 3)
            return [_pick_action(rng, True) for _ in range(32)]

        assert schedule() == schedule()


class TestClassification:
    """Satellite: TWL003 knows the new spec dataclasses."""

    def test_serve_dataclasses_are_classified(self):
        from repro.devtools.lint import check_classifications

        assert check_classifications() == []
