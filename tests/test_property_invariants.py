"""Cross-scheme property-based invariants.

Every wear-leveling scheme, fed any write stream, must preserve three
invariants:

* the logical-to-physical mapping stays a bijection (data is never
  lost or duplicated);
* wear conservation: the array's total writes equal the scheme's demand
  writes plus its reported migration writes;
* translation stays inside the physical array.

Hypothesis drives random streams through every registered scheme.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pcm.array import PCMArray
from repro.wearlevel.registry import make_scheme, scheme_names

_N_PAGES = 32


def _fresh_scheme(name):
    endurance = np.linspace(500, 2000, _N_PAGES).astype(np.int64)
    array = PCMArray(endurance)
    return array, make_scheme(name, array, seed=7)


def _mapping(scheme):
    return [scheme.translate(la) for la in range(scheme.logical_pages)]


@pytest.mark.parametrize("scheme_name", sorted(set(scheme_names()) - {"twl"}))
class TestSchemeInvariants:
    @given(stream=st.lists(st.integers(0, _N_PAGES - 2), min_size=1, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_invariants_under_random_stream(self, scheme_name, stream):
        array, scheme = _fresh_scheme(scheme_name)
        for la in stream:
            writes = scheme.write(la % scheme.logical_pages)
            assert writes >= 1

        # Bijection over the logical space.
        mapping = _mapping(scheme)
        assert len(set(mapping)) == scheme.logical_pages
        assert all(0 <= pa < array.n_pages for pa in mapping)

        # Wear conservation.
        assert array.total_writes == scheme.demand_writes + scheme.swap_writes
        assert scheme.demand_writes == len(stream)

    @given(stream=st.lists(st.integers(0, _N_PAGES - 2), min_size=1, max_size=100))
    @settings(max_examples=10, deadline=None)
    def test_reads_never_wear(self, scheme_name, stream):
        array, scheme = _fresh_scheme(scheme_name)
        for la in stream:
            scheme.read(la % scheme.logical_pages)
        assert array.total_writes == 0

    @given(
        stream=st.lists(st.integers(0, _N_PAGES - 2), min_size=1, max_size=200),
        split=st.integers(1, 199),
    )
    @settings(max_examples=10, deadline=None)
    def test_translation_stable_between_writes(self, scheme_name, stream, split):
        """translate() has no side effects: two calls agree."""
        array, scheme = _fresh_scheme(scheme_name)
        for la in stream[: split % len(stream)]:
            scheme.write(la % scheme.logical_pages)
        first = _mapping(scheme)
        second = _mapping(scheme)
        assert first == second
