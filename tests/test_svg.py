"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import (
    save_svg,
    svg_grouped_bars,
    svg_line_chart,
    svg_wear_heatmap,
)

_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg_text):
    return ET.fromstring(svg_text)


class TestGroupedBars:
    def test_well_formed(self):
        svg = svg_grouped_bars(["a", "b"], {"s1": [1.0, 2.0], "s2": [0.5, 1.5]})
        root = _parse(svg)
        assert root.tag == f"{_NS}svg"

    def test_bar_count(self):
        svg = svg_grouped_bars(["a", "b", "c"], {"x": [1, 2, 3], "y": [3, 2, 1]})
        root = _parse(svg)
        rects = root.findall(f"{_NS}rect")
        # background + 6 bars + 2 legend swatches
        assert len(rects) == 1 + 6 + 2

    def test_title_and_labels_escaped(self):
        svg = svg_grouped_bars(["a<b"], {"s&t": [1.0]}, title="x < y")
        _parse(svg)  # would raise on bad escaping

    def test_bar_heights_proportional(self):
        svg = svg_grouped_bars(["g"], {"x": [1.0], "y": [2.0]})
        root = _parse(svg)
        bars = [r for r in root.findall(f"{_NS}rect") if r.find(f"{_NS}title") is not None]
        heights = sorted(float(b.get("height")) for b in bars)
        assert heights[1] == pytest.approx(2 * heights[0], rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            svg_grouped_bars([], {})
        with pytest.raises(ValueError):
            svg_grouped_bars(["a"], {"s": [1.0, 2.0]})
        with pytest.raises(ValueError):
            svg_grouped_bars(["a"], {"s": [-1.0]})


class TestLineChart:
    def test_well_formed_with_polylines(self):
        svg = svg_line_chart([1, 2, 4], {"twl": [1, 2, 3], "sr": [3, 2, 1]})
        root = _parse(svg)
        assert len(root.findall(f"{_NS}polyline")) == 2

    def test_log_axis(self):
        svg = svg_line_chart(
            [1, 2, 4, 8, 16], {"ratio": [0.4, 0.2, 0.1, 0.05, 0.025]}, log_x=True
        )
        root = _parse(svg)
        points = root.find(f"{_NS}polyline").get("points").split()
        xs = [float(p.split(",")[0]) for p in points]
        # Log spacing: equal gaps between powers of two.
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert max(gaps) - min(gaps) < 1.0

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            svg_line_chart([0, 1], {"s": [1, 2]}, log_x=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            svg_line_chart([], {})
        with pytest.raises(ValueError):
            svg_line_chart([1], {"s": [1, 2]})


class TestHeatmap:
    def test_cell_per_page(self):
        svg = svg_wear_heatmap([0.1] * 50, columns=10)
        root = _parse(svg)
        rects = root.findall(f"{_NS}rect")
        assert len(rects) == 1 + 50  # background + cells

    def test_dead_page_marked(self):
        svg = svg_wear_heatmap([0.2, 1.0], columns=2)
        root = _parse(svg)
        cells = [r for r in root.findall(f"{_NS}rect") if r.find(f"{_NS}title") is not None]
        strokes = {c.get("stroke") for c in cells}
        assert "black" in strokes

    def test_color_ramp(self):
        svg = svg_wear_heatmap([0.0, 1.0], columns=2)
        assert "rgb(255,255,255)" in svg
        assert "rgb(255,0,0)" in svg

    def test_validation(self):
        with pytest.raises(ValueError):
            svg_wear_heatmap([])
        with pytest.raises(ValueError):
            svg_wear_heatmap([0.5], columns=0)
        with pytest.raises(ValueError):
            svg_wear_heatmap([-0.1])


class TestSave:
    def test_save_creates_dirs(self, tmp_path):
        path = str(tmp_path / "figures" / "demo.svg")
        save_svg(svg_wear_heatmap([0.5]), path)
        assert _parse(open(path).read()).tag == f"{_NS}svg"
