"""Tests for the Galois LFSR."""

import pytest

from repro.errors import ConfigError
from repro.rng.lfsr import GaloisLFSR, MAXIMAL_TAPS


class TestGaloisLFSR:
    def test_maximal_period_width_8(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        states = set()
        for _ in range(255):
            states.add(lfsr.step())
        assert len(states) == 255
        assert 0 not in states

    def test_maximal_period_width_4(self):
        lfsr = GaloisLFSR(width=4, seed=3)
        seen = [lfsr.step() for _ in range(15)]
        assert len(set(seen)) == 15

    def test_state_never_zero(self):
        lfsr = GaloisLFSR(width=8, seed=0xFF)
        for _ in range(1000):
            assert lfsr.step() != 0

    def test_deterministic(self):
        a = GaloisLFSR(width=16, seed=77)
        b = GaloisLFSR(width=16, seed=77)
        assert [a.step() for _ in range(50)] == [b.step() for _ in range(50)]

    def test_next_word_width(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        for _ in range(20):
            assert 0 <= lfsr.next_word(5) < 32

    def test_next_word_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            GaloisLFSR(width=8, seed=1).next_word(0)

    def test_bit_stream_balanced(self):
        lfsr = GaloisLFSR(width=16, seed=0xACE1)
        ones = sum(lfsr.next_bit() for _ in range(4000))
        assert 1800 < ones < 2200

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigError):
            GaloisLFSR(width=8, seed=0)

    def test_rejects_unknown_width_without_taps(self):
        with pytest.raises(ConfigError):
            GaloisLFSR(width=17, seed=1)

    def test_explicit_taps_accepted(self):
        lfsr = GaloisLFSR(width=17, seed=1, taps=0x12000)
        assert lfsr.step() >= 0

    def test_iter_states(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        assert len(list(lfsr.iter_states(10))) == 10

    def test_all_builtin_taps_are_maximal_small_widths(self):
        for width in (4, 5, 6, 7, 8, 9, 10):
            lfsr = GaloisLFSR(width=width, seed=1, taps=MAXIMAL_TAPS[width])
            period = (1 << width) - 1
            states = {lfsr.step() for _ in range(period)}
            assert len(states) == period, f"width {width} not maximal"
