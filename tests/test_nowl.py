"""Tests for the no-wear-leveling baseline."""

import pytest

from repro.errors import AddressError
from repro.pcm.array import PCMArray
from repro.wearlevel.nowl import NoWearLeveling


class TestNoWearLeveling:
    def test_identity_translation(self, uniform_array):
        scheme = NoWearLeveling(uniform_array)
        for la in range(16):
            assert scheme.translate(la) == la
            assert scheme.read(la) == la

    def test_write_lands_on_same_page(self, uniform_array):
        scheme = NoWearLeveling(uniform_array)
        assert scheme.write(5) == 1
        assert uniform_array.page_writes(5) == 1

    def test_counters(self, uniform_array):
        scheme = NoWearLeveling(uniform_array)
        for _ in range(10):
            scheme.write(0)
        assert scheme.demand_writes == 10
        assert scheme.swap_writes == 0
        assert scheme.swap_write_ratio() == 0.0

    def test_stats_keys(self, uniform_array):
        scheme = NoWearLeveling(uniform_array)
        scheme.write(1)
        stats = scheme.stats()
        assert stats["demand_writes"] == 1.0
        assert stats["swap_events"] == 0.0

    def test_hot_page_dies_at_endurance(self):
        array = PCMArray.uniform(4, 100)
        scheme = NoWearLeveling(array)
        for _ in range(100):
            scheme.write(2)
        assert array.first_failure.physical_page == 2
        assert array.first_failure.device_writes == 100

    def test_rejects_out_of_range(self, uniform_array):
        scheme = NoWearLeveling(uniform_array)
        with pytest.raises(AddressError):
            scheme.write(16)

    def test_repr(self, uniform_array):
        assert "NoWearLeveling" in repr(NoWearLeveling(uniform_array))
