"""Statistical properties of the stochastic components.

These tests check distributional behaviour (uniformity, avalanche,
trigger frequency) rather than point values, with thresholds loose
enough to be deterministic at the fixed seeds used.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.config import SecurityRefreshConfig
from repro.pcm.array import PCMArray
from repro.rng.feistel import FeistelNetwork, FeistelRNG
from repro.tables.write_counter import WriteCounterTable
from repro.wearlevel.security_refresh import SecurityRefresh


class TestFeistelStatistics:
    def test_avalanche_single_bit_flip(self):
        """Flipping one input bit should flip ~half the output bits."""
        network = FeistelNetwork(bits=16, seed=5)
        flips = 0
        samples = 512
        for value in range(samples):
            base = network.encrypt(value)
            neighbour = network.encrypt(value ^ 1)
            flips += bin(base ^ neighbour).count("1")
        mean_flips = flips / samples
        assert 5.0 < mean_flips < 11.0  # ideal 8 for 16-bit blocks

    def test_counter_mode_uniformity(self):
        generator = FeistelRNG(bits=8, seed=9)
        counts = np.zeros(16, dtype=int)
        for _ in range(4096):
            counts[generator.next_word() % 16] += 1
        # Full-period structure makes this extremely uniform.
        chi2 = ((counts - 256.0) ** 2 / 256.0).sum()
        assert chi2 < 25.0

    def test_permutation_fixed_points_rare(self):
        network = FeistelNetwork(bits=12, seed=3)
        fixed = sum(1 for v in range(4096) if network.encrypt(v) == v)
        # A random permutation has ~1 fixed point on average.
        assert fixed < 10


class TestSRUniformity:
    def test_stationary_wear_is_uniform(self):
        """Chi-square test of SR's wear distribution under repeat writes."""
        array = PCMArray.uniform(64, 10**9)
        scheme = SecurityRefresh(
            array, SecurityRefreshConfig(refresh_interval=8), seed=4
        )
        for _ in range(120_000):
            scheme.write(0)
        counts = array.write_counts().astype(float)
        expected = counts.mean()
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 63 degrees of freedom; the 0.1% critical value is ~103 for
        # i.i.d. placement.  SR deposits geometric bursts (mean 8,
        # second moment ~2*8^2) per frame visit, inflating the variance
        # by E[B^2]/E[B] ~ 2*interval; bound accordingly.
        assert chi2 < 103.4 * 2.5 * 8
        # No frame drifts beyond a factor band of the mean.
        assert counts.max() / counts.min() < 2.0

    def test_no_frame_starved(self):
        array = PCMArray.uniform(64, 10**9)
        scheme = SecurityRefresh(
            array, SecurityRefreshConfig(refresh_interval=8), seed=4
        )
        for _ in range(120_000):
            scheme.write(0)
        assert int(array.write_counts().min()) > 0


class TestWCTFrequency:
    @pytest.mark.parametrize("interval", [1, 2, 5, 16, 127])
    def test_trigger_rate_exact(self, interval):
        table = WriteCounterTable(1, bits=7, interval=interval)
        writes = interval * 50
        triggers = sum(table.record_write(0) for _ in range(writes))
        assert triggers == 50

    def test_interleaved_pages_independent(self):
        table = WriteCounterTable(3, interval=4)
        triggers = {0: 0, 1: 0, 2: 0}
        for step in range(120):
            page = step % 3
            if table.record_write(page):
                triggers[page] += 1
        assert triggers == {0: 10, 1: 10, 2: 10}


class TestEnduranceStrata:
    def test_quantiles_match_distribution(self, rng):
        from repro.pcm.endurance import sample_tail_faithful

        sample = sample_tail_faithful(2048, 1 << 23, 10_000, 0.11, rng)
        # Kolmogorov-Smirnov against the target normal: the stratified
        # body should fit tightly.
        statistic, _ = scipy_stats.kstest(
            sample, "norm", args=(10_000, 1100)
        )
        assert statistic < 0.05
