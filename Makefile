# Convenience targets for the TWL reproduction.

.PHONY: install test lint typecheck bench bench-quick bench-trajectory quick-parallel quick-resilient quick-sanitized quick-softerrors quick-stream quick-chaos quick-serve examples report clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Full lint gate: ruff (style/pyflakes/isort) + mypy on the typed core
# + the repo's own two-phase analyzer (per-file determinism rules
# TWL001-TWL007 plus the project-wide state & effect rules
# TWL008-TWL010, see docs/invariants.md).  ruff/mypy are dev extras;
# when absent locally the corresponding step is skipped with a notice
# (CI installs both).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed, skipping (pip install -e .[dev])"; \
	fi
	@$(MAKE) --no-print-directory typecheck
	PYTHONPATH=src python -m repro.devtools.lint

# mypy over the typed core only (repro.rng / repro.config / repro.exec
# / repro.engine / repro.errors / repro.devtools); legacy packages are
# followed silently per the [tool.mypy] table in pyproject.toml.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "typecheck: mypy not installed, skipping (pip install -e .[dev])"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_QUICK=1 pytest benchmarks/ --benchmark-only

# The committed benchmark trajectory (docs/performance.md): smoke-size
# run of every engine scenario, machine-normalized, gated against the
# best committed BENCH_*.json at the repo root.  This is what the CI
# bench job runs; a full-size artifact for committing is
#   PYTHONPATH=src python benchmarks/bench_trajectory.py --tag PRn --output BENCH_PRn.json
bench-trajectory:
	PYTHONPATH=src python benchmarks/bench_trajectory.py --smoke --check

# Smoke the parallel executor path end-to-end (also covered by
# tests/test_exec.py so it stays green under tier-1).
quick-parallel:
	PYTHONPATH=src python -m repro.cli fig6 --quick --jobs 2

# Smoke the fault-tolerance layer end-to-end: deterministic fault
# injection makes every cell fail once with a transient error, and the
# retry budget carries the campaign to completion with bit-identical
# results (see docs/robustness.md; also covered by
# tests/test_resilience.py).
quick-resilient:
	STATE=$$(mktemp -d) && \
	REPRO_FAULTS="{\"mode\": \"transient\", \"rate\": 1.0, \"times\": 1, \"state_dir\": \"$$STATE\"}" \
	PYTHONPATH=src python -m repro.cli fig6 --quick --jobs 2 --retries 2 --no-cache

# Smoke the runtime determinism sanitizer end-to-end: every cell runs
# with the random/np.random global entry points booby-trapped, proving
# dynamically that no global RNG state leaks into results (also
# covered by tests/test_lint.py; see docs/invariants.md).
quick-sanitized:
	REPRO_SANITIZE=1 PYTHONPATH=src python -m repro.cli fig6 --quick --jobs 2 --no-cache

# Smoke the controller soft-error layer end-to-end: the resilience
# sweep (scheme × protection × rate) under the determinism sanitizer,
# with parity/SECDED cells running under the runtime invariant checker
# (see docs/robustness.md; also covered by tests/test_softerrors.py).
quick-softerrors:
	REPRO_SANITIZE=1 PYTHONPATH=src python -m repro.cli resilience --quick --jobs 2 --no-cache

# Smoke the streaming workload pipeline end-to-end: the FTL dynamic
# generator through every Figure-8 scheme, then the constant-memory
# guarantee — post-warmup peak-RSS growth under a hard ceiling while
# millions of streamed requests flow (see docs/workloads.md; also
# covered by tests/test_streams.py and tests/test_engine_identity.py).
quick-stream:
	PYTHONPATH=src python -m repro.cli stream --quick --no-cache
	PYTHONPATH=src python benchmarks/stream_rss_check.py

# Smoke the crash-consistency layer end-to-end: a deterministic mid-run
# SIGKILL takes a worker down after 50k demand writes, the pool
# rebuilds, and the killed cell resumes from its last committed
# snapshot — all under the runtime determinism sanitizer, with results
# bit-identical to an uninterrupted campaign (see docs/robustness.md;
# the per-scheme matrix is tests/test_snapshot_identity.py and the
# subprocess SIGKILL proof is tests/test_resilience.py).
quick-chaos:
	STATE=$$(mktemp -d) && CACHE=$$(mktemp -d) && \
	REPRO_FAULTS="{\"mode\": \"kill\", \"rate\": 1.0, \"times\": 1, \"max_total\": 1, \"kill_at_demand\": 50000, \"state_dir\": \"$$STATE\"}" \
	REPRO_SANITIZE=1 \
	PYTHONPATH=src python -m repro.cli stream --quick --jobs 2 \
		--cache-dir "$$CACHE" --snapshot-every 20000 \
		--resume "$$STATE/manifest.jsonl"

# Smoke the campaign service end-to-end: a real `twl-repro serve`
# process on a UNIX socket, the seeded chaos load generator (duplicate
# resubmissions, malformed/oversized frames, disconnects, slow-loris),
# a SIGKILL of the server mid-campaign, and a restart on the same
# state dir that must resume every session — with all surviving
# responses bit-identical to serial execution (see docs/serving.md;
# the in-process mechanism tests are tests/test_serve.py).
quick-serve:
	PYTHONPATH=src python benchmarks/serve_chaos_check.py --quick

examples:
	python examples/quickstart.py
	python examples/attack_anatomy.py
	python examples/parsec_lifetime.py
	python examples/design_space.py
	python examples/custom_scheme.py
	python examples/wear_timeline.py
	python examples/figure_gallery.py

report:
	python -m repro.cli report --output report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
