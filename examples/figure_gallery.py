#!/usr/bin/env python3
"""Render the paper's figures as SVG files.

Runs a reduced-scale version of Figures 6 and 7 plus a wear heatmap of
an attacked array, and writes vector figures under ``figures/``.

Run:  python examples/figure_gallery.py [output_dir]
"""

import sys

from repro.analysis.calibration import attack_ideal_lifetime_years
from repro.analysis.svg import (
    save_svg,
    svg_grouped_bars,
    svg_line_chart,
    svg_wear_heatmap,
)
from repro.attacks.registry import make_attack
from repro.config import ScaledArrayConfig, TWLConfig
from repro.sim.drivers import AttackDriver
from repro.sim.lifetime import run_to_failure
from repro.sim.runner import build_array, measure_attack_lifetime
from repro.wearlevel.registry import make_scheme

SCALED = ScaledArrayConfig(n_pages=256, endurance_mean=3072.0)
SCHEMES = ("bwl", "sr", "twl_ap", "twl_swp", "nowl")
ATTACKS = ("repeat", "random", "scan", "inconsistent")


def figure6(out_dir: str) -> None:
    ideal = attack_ideal_lifetime_years()
    series = {}
    for scheme in SCHEMES:
        years = []
        for attack in ATTACKS:
            result = measure_attack_lifetime(scheme, attack, scaled=SCALED)
            years.append(result.lifetime_fraction * ideal)
        series[scheme] = years
        print(f"  figure 6: {scheme} done")
    svg = svg_grouped_bars(
        list(ATTACKS),
        series,
        title="Figure 6 — lifetime under attacks (years)",
        y_label="years",
    )
    save_svg(svg, f"{out_dir}/fig6_attacks.svg")


def figure7(out_dir: str) -> None:
    intervals = [1, 2, 4, 8, 16, 32, 64, 127]
    ratios = []
    for interval in intervals:
        config = TWLConfig(toss_up_interval=interval)
        array = build_array(SCALED)
        scheme = make_scheme("twl", array, seed=2017, config=config)
        attack = make_attack("random", scheme.logical_pages, seed=2017)
        AttackDriver(attack).drive(scheme, 40_000)
        ratios.append(scheme.toss_up_swap_ratio())
    print("  figure 7: sweep done")
    svg = svg_line_chart(
        intervals,
        {"swap/write ratio": ratios},
        title="Figure 7(a) — swap ratio vs toss-up interval",
        log_x=True,
        y_label="swap/write",
    )
    save_svg(svg, f"{out_dir}/fig7_interval.svg")


def wear_heatmaps(out_dir: str) -> None:
    for scheme_name in ("nowl", "twl_swp"):
        array = build_array(SCALED)
        scheme = make_scheme(scheme_name, array, seed=2017)
        attack = make_attack("inconsistent", scheme.logical_pages, seed=2017)
        run_to_failure(scheme, AttackDriver(attack))
        svg = svg_wear_heatmap(
            array.wear_fraction().tolist(),
            columns=32,
            title=f"Wear at first failure — {scheme_name} vs inconsistent attack",
        )
        save_svg(svg, f"{out_dir}/heatmap_{scheme_name}.svg")
        print(f"  heatmap: {scheme_name} done")


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    print(f"rendering SVG figures into {out_dir}/ ...")
    figure6(out_dir)
    figure7(out_dir)
    wear_heatmaps(out_dir)
    print("done.")


if __name__ == "__main__":
    main()
