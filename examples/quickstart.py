#!/usr/bin/env python3
"""Quickstart: protect a PCM from the inconsistent-write attack.

Builds a scaled PCM array with process variation, runs the paper's
inconsistent-write attack against Bloom-filter wear leveling (the
state-of-the-art baseline) and against Toss-up Wear Leveling, and
reports how long each memory survives.

Run:  python examples/quickstart.py
"""

from repro import (
    attack_ideal_lifetime_years,
    measure_attack_lifetime,
)
from repro.analysis.extrapolate import targeted_attack_full_scale_seconds
from repro.analysis.calibration import PAPER_ATTACK_BANDWIDTH_BYTES
from repro.config import ScaledArrayConfig
from repro.units import format_duration


def main() -> None:
    # A small array keeps the demo fast; the endurance-to-footprint
    # ratio matches the paper's full-scale memory (see DESIGN.md).
    scaled = ScaledArrayConfig(n_pages=512, endurance_mean=6144.0)
    ideal_years = attack_ideal_lifetime_years()
    print(f"Ideal lifetime at the attack bandwidth: {ideal_years:.2f} years\n")

    print("Running the inconsistent-write attack (Section 3.2) ...")
    for scheme, label in (("bwl", "Bloom-filter WL (BWL)"),
                          ("twl_swp", "Toss-up WL (TWL)")):
        result = measure_attack_lifetime(scheme, "inconsistent", scaled=scaled)
        years = result.lifetime_fraction * ideal_years
        if result.lifetime_fraction < 0.1:
            # Targeted breakdowns are scale-invariant in absolute time.
            seconds = targeted_attack_full_scale_seconds(
                result.lifetime_fraction, scaled.n_pages, PAPER_ATTACK_BANDWIDTH_BYTES
            )
            verdict = f"worn out in ~{format_duration(seconds)} at full scale"
        else:
            verdict = f"survives {years:.1f} years"
        print(f"  {label:24s} -> {verdict}")

    print("\nAnd under the classic repeat-write attack:")
    for scheme, label in (("nowl", "No wear leveling"),
                          ("sr", "Security Refresh"),
                          ("twl_swp", "Toss-up WL (TWL)")):
        result = measure_attack_lifetime(scheme, "repeat", scaled=scaled)
        years = result.lifetime_fraction * ideal_years
        print(
            f"  {label:24s} -> {years:.2f} years "
            f"({result.lifetime_fraction:.1%} of ideal)"
        )


if __name__ == "__main__":
    main()
