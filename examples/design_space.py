#!/usr/bin/env python3
"""TWL design-space exploration: interval tuning and hardware cost.

Reproduces the Figure-7 trade-off (swap overhead vs lifetime as the
toss-up interval grows) on a reduced scale and prints the Section-5.4
hardware cost report for the resulting configuration.

Run:  python examples/design_space.py
"""

from repro.analysis.calibration import attack_ideal_lifetime_years
from repro.analysis.tables import ResultTable
from repro.config import ScaledArrayConfig, TWLConfig
from repro.hwcost.synthesis import twl_design_overhead
from repro.sim.runner import measure_attack_lifetime
from repro.units import format_size


def main() -> None:
    scaled = ScaledArrayConfig(n_pages=256, endurance_mean=3072.0)
    ideal = attack_ideal_lifetime_years()

    print("Toss-up interval trade-off (scan attack, Figure 7 style):\n")
    table = ResultTable(["interval", "extra_writes", "scan_years", "repeat_years"])
    for interval in (1, 4, 16, 32, 64):
        config = TWLConfig(toss_up_interval=interval)
        scan = measure_attack_lifetime(
            "twl_swp", "scan", scaled=scaled, scheme_kwargs={"config": config}
        )
        repeat = measure_attack_lifetime(
            "twl_swp", "repeat", scaled=scaled, scheme_kwargs={"config": config}
        )
        table.add_row(
            interval=interval,
            extra_writes=round(scan.overhead_ratio, 3),
            scan_years=round(scan.lifetime_fraction * ideal, 2),
            repeat_years=round(repeat.lifetime_fraction * ideal, 2),
        )
    print(table.render())

    print("\nHardware cost of the chosen configuration (Section 5.4):\n")
    report = twl_design_overhead()
    print(f"  per-page table bits : {report.storage_bits_per_page}")
    print(f"  storage overhead    : {report.storage_overhead:.2e} "
          f"of a {format_size(4096)} page")
    print(f"  Feistel RNG         : {report.rng_gates} gate equivalents")
    print(f"  toss-up datapath    : {report.datapath_gates} gate equivalents")
    print(f"  total logic         : {report.total_gates} gate equivalents")


if __name__ == "__main__":
    main()
