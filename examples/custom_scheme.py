#!/usr/bin/env python3
"""Extending the library: plug in your own wear-leveling scheme.

Implements a toy "probabilistic start-gap" scheme against the public
``WearLeveler`` interface and evaluates it with the same harness used
for the paper's figures — the pattern downstream users follow to test
new wear-leveling ideas against TWL and the baselines.

Run:  python examples/custom_scheme.py
"""

from repro.analysis.calibration import attack_ideal_lifetime_years
from repro.analysis.tables import ResultTable
from repro.attacks.registry import attack_names, make_attack
from repro.config import ScaledArrayConfig
from repro.pcm.array import PCMArray
from repro.rng.xorshift import XorShift32
from repro.sim.drivers import AttackDriver
from repro.sim.lifetime import run_to_failure
from repro.sim.runner import build_array
from repro.tables.remap import RemappingTable
from repro.wearlevel.base import WearLeveler
from repro.wearlevel.registry import make_scheme


class ProbabilisticSwap(WearLeveler):
    """A minimal custom scheme: randomly swap the written page's frame.

    With probability 1/64, the frame of the just-written page trades
    places with the frame holding the *least-worn* page the controller
    has seen — a crude PV-aware randomizer, here purely to demonstrate
    the extension interface.
    """

    name = "prob_swap"

    def __init__(self, array: PCMArray, seed: int = 0):
        super().__init__(array)
        self.remap = RemappingTable(array.n_pages)
        self._rng = XorShift32((seed % 0xFFFF_FFFE) + 1)

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def write(self, logical: int) -> int:
        frame = self.remap.lookup(logical)
        self.array.write(frame)
        self._count_demand()
        writes = 1
        if self._rng.next_below(64) == 0:
            target = int(self.array.remaining().argmax())
            if target != frame:
                self.array.write(frame)
                self.array.write(target)
                self.remap.swap_logical(logical, self.remap.inverse(target))
                self._count_swap(2)
                writes += 2
        return writes


def evaluate(scheme_factory, label, scaled, ideal):
    row = {"scheme": label}
    for attack_name in attack_names():
        array = build_array(scaled)
        scheme = scheme_factory(array)
        attack = make_attack(attack_name, scheme.logical_pages, seed=2017)
        result = run_to_failure(scheme, AttackDriver(attack))
        row[attack_name] = round(result.lifetime_fraction * ideal, 2)
    return row


def main() -> None:
    scaled = ScaledArrayConfig(n_pages=256, endurance_mean=3072.0)
    ideal = attack_ideal_lifetime_years()

    table = ResultTable(["scheme"] + attack_names())
    table.add_row(**evaluate(
        lambda array: ProbabilisticSwap(array, seed=2017), "prob_swap (custom)",
        scaled, ideal,
    ))
    for name in ("sr", "twl_swp"):
        table.add_row(**evaluate(
            lambda array, n=name: make_scheme(n, array, seed=2017), name,
            scaled, ideal,
        ))
    print(table.render(title="Custom scheme vs baselines — lifetime under attacks (years)"))
    print("\nAnything implementing WearLeveler drops straight into the harness.")


if __name__ == "__main__":
    main()
