#!/usr/bin/env python3
"""Watch wear leveling happen: wear-distribution timelines.

Drives the same scan attack into three schemes and snapshots the wear
Gini coefficient (0 = perfectly even wear) and the maximum wear fraction
along the way — the dynamics behind the Figure-6 lifetimes.

Run:  python examples/wear_timeline.py
"""

from repro.analysis.tables import format_table
from repro.analysis.timeline import WearTimeline
from repro.attacks.registry import make_attack
from repro.config import ScaledArrayConfig
from repro.sim.drivers import AttackDriver
from repro.sim.runner import build_array
from repro.wearlevel.registry import make_scheme

SCHEMES = ("nowl", "sr", "twl_swp")
TOTAL_DEMAND = 200_000
SNAPSHOTS = 8


def main() -> None:
    scaled = ScaledArrayConfig(n_pages=256, endurance_mean=3072.0)
    timelines = {}
    for scheme_name in SCHEMES:
        array = build_array(scaled)
        scheme = make_scheme(scheme_name, array, seed=2017)
        attack = make_attack("repeat", scheme.logical_pages, seed=2017)
        timeline = WearTimeline(scheme, AttackDriver(attack))
        timeline.run(TOTAL_DEMAND, snapshots=SNAPSHOTS)
        timelines[scheme_name] = timeline

    print("Wear Gini over the repeat attack (lower = more even wear):\n")
    axis = max(timelines.values(), key=lambda t: len(t.points)).demand_axis()
    rows = []
    for index, demand in enumerate(axis):
        row = [demand]
        for scheme_name in SCHEMES:
            series = timelines[scheme_name].series("wear_gini")
            row.append(round(series[index], 3) if index < len(series) else None)
        rows.append(row)
    print(format_table(["demand_writes"] + list(SCHEMES), rows, precision=3))

    print("\nMaximum wear fraction (1.0 = first page death):\n")
    rows = []
    for index, demand in enumerate(axis):
        row = [demand]
        for scheme_name in SCHEMES:
            series = timelines[scheme_name].series("max_wear_fraction")
            row.append(round(series[index], 3) if index < len(series) else None)
        rows.append(row)
    print(format_table(["demand_writes"] + list(SCHEMES), rows, precision=3))

    print(
        "\nNOWL's Gini pegs near 1.0 (one page takes everything) and its\n"
        "max wear hits 1.0 almost immediately; SR flattens wear but cannot\n"
        "protect weak pages; TWL's toss-up plus inter-pair swaps spread\n"
        "wear while keeping the weakest frames coolest."
    )


if __name__ == "__main__":
    main()
