#!/usr/bin/env python3
"""Anatomy of the inconsistent-write attack.

Walks through the attack against Bloom-filter wear leveling step by
step, showing what the attacker observes (response-time spikes), how it
reacts (staircase reversals), and what that does to the memory (wear
concentrating on the weakest frames).

Run:  python examples/attack_anatomy.py
"""

import numpy as np

from repro.analysis.tables import ascii_bar_chart
from repro.attacks.inconsistent import InconsistentWriteAttack
from repro.config import ScaledArrayConfig
from repro.sim.drivers import AttackDriver
from repro.sim.runner import build_array
from repro.wearlevel.registry import make_scheme


def main() -> None:
    scaled = ScaledArrayConfig(n_pages=256, endurance_mean=3072.0)
    array = build_array(scaled)
    scheme = make_scheme("bwl", array, seed=2017)
    attack = InconsistentWriteAttack(scheme.logical_pages, n_targets=32)
    driver = AttackDriver(attack)

    print("Phase-by-phase view of the attack against BWL:\n")
    header = f"{'writes':>8}  {'reversals':>9}  {'phase est.':>10}  {'max wear %':>10}"
    print(header)
    print("-" * len(header))
    total = 0
    while not array.failed and total < 400_000:
        driver.drive(scheme, 10_000)
        total += 10_000
        wear = array.wear_fraction().max() * 100
        print(
            f"{total:8d}  {attack.reversals:9d}  "
            f"{attack.period_estimate:10.0f}  {wear:10.1f}"
        )

    print()
    if array.failed:
        failure = array.first_failure
        endurance = array.endurance
        z_score = (failure.page_endurance - endurance.mean()) / endurance.std()
        print(
            f"First failure after {scheme.demand_writes} demand writes: "
            f"frame {failure.physical_page} "
            f"(endurance {failure.page_endurance}, z = {z_score:+.1f})"
        )
        print("The attack ground down one of the weakest frames, exactly")
        print("as Section 3.2 predicts for prediction-based wear leveling.\n")

    # Where did the wear go?  Show the ten most-worn frames against
    # their endurance.
    wear_fraction = array.wear_fraction()
    order = np.argsort(wear_fraction)[::-1][:10]
    labels = [f"frame {int(i):4d} (E={int(array.endurance[i])})" for i in order]
    print(
        ascii_bar_chart(
            labels,
            [float(wear_fraction[i]) for i in order],
            title="Most-worn frames at failure (wear / endurance)",
        )
    )


if __name__ == "__main__":
    main()
