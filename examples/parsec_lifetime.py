#!/usr/bin/env python3
"""Benchmark lifetimes: the Figure-8 experiment on a few workloads.

Generates synthetic PARSEC traces calibrated to the paper's Table 2,
loops them until first page failure under each wear-leveling scheme,
and charts the normalized lifetimes.

Run:  python examples/parsec_lifetime.py [benchmark ...]
"""

import sys

from repro.analysis.tables import ResultTable, ascii_bar_chart
from repro.config import ScaledArrayConfig
from repro.sim.runner import measure_trace_lifetime
from repro.traces.parsec import PARSEC_TABLE2, get_profile, make_benchmark_trace

SCHEMES = ("nowl", "sr", "bwl", "twl")
DEFAULT_BENCHMARKS = ("canneal", "streamcluster", "vips")


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT_BENCHMARKS)
    unknown = [n for n in names if n not in PARSEC_TABLE2]
    if unknown:
        print(f"unknown benchmarks: {', '.join(unknown)}")
        print(f"available: {', '.join(sorted(PARSEC_TABLE2))}")
        raise SystemExit(1)

    scaled = ScaledArrayConfig(n_pages=512, endurance_mean=6144.0)
    table = ResultTable(["benchmark"] + list(SCHEMES))
    for name in names:
        profile = get_profile(name)
        trace = make_benchmark_trace(profile, scaled.n_pages, 150_000, seed=2017)
        print(f"simulating {name} (concentration {profile.concentration:.1f}) ...")
        row = {"benchmark": name}
        for scheme in SCHEMES:
            result = measure_trace_lifetime(scheme, trace, scaled=scaled)
            row[scheme] = round(result.lifetime_fraction, 3)
        table.add_row(**row)

    print()
    print(table.render(title="Lifetime normalized to ideal (Figure 8 metric)"))
    print()
    for row in table.rows():
        values = [row[scheme] for scheme in SCHEMES]
        print(ascii_bar_chart(list(SCHEMES), values, title=row["benchmark"], width=30))
        print()


if __name__ == "__main__":
    main()
